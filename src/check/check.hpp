// Opt-in MPI correctness checker (colcom::check).
//
// The deterministic DES observes every matching decision the message layer
// makes, which permits precise dynamic verification in the spirit of
// MUST/ISP, without the sampling and interposition costs those tools pay on
// real MPI. Four analyses run behind a single installed `Checker`:
//
//   CHK-RACE     message races: a wildcard receive matched one send while a
//                causally concurrent send (vector-clock comparison) from a
//                different rank could equally have matched.
//   CHK-DEADLOCK the engine drained its event queue with fibers still
//                blocked; the wait-for graph is walked and the cycle (or the
//                dangling waits) are named rank by rank.
//   CHK-COLL     collective mismatches: every rank's Nth collective must
//                agree on kind, root, reduction op, and datatype signature;
//                ranks must complete the same number of collectives.
//   CHK-DTYPE    derived-datatype overlap at construction time.
//   CHK-BUF      send-buffer mutation while the send is pending (sampled
//                checksum at post time, verified at wait()).
//   CHK-IO       MPI-IO epoch discipline over the staging layer: a demand
//                read of a file extent that overlaps a staged (write-behind)
//                dirty extent not yet separated by a flush epoch — the read
//                may observe pre- or post-write bytes depending on drain
//                timing, exactly the overlap MPI-IO consistency semantics
//                forbid without an intervening sync.
//   CHK-REP      replicated-decision divergence: every rank's control-plane
//                decision stream (schedule picks, replan plans, agreement
//                verdicts, epoch/tag-salt allocations) is digest-compared
//                slot by slot; the first divergent step is reported with a
//                field-level diff.
//   CHK-EXPLORE  schedule-space violations: findings surfaced by
//                check::Explorer (explore.hpp) while enumerating event
//                orders, wrapped with the violating schedule's identity.
//   CHK-SUM      envelope payload integrity: every delivered message's
//                payload is compared against the checksum sampled when the
//                send was posted (the sampled-window FNV of checksum()), so
//                a shuffle envelope corrupted between post and delivery —
//                or a matching bug handing the wrong buffer to a receiver —
//                is caught at the hand-off, before the analysis consumes it.
//
// The checker is off unless installed — either through the `CheckSession`
// RAII type or `install_from_env()` (COLCOM_CHECK=1|strict|report). In
// strict mode a finding throws `check::Violation`; in report mode findings
// are collected on the checker, counted as `check.*` metrics, and emitted as
// trace instants when a tracer is active.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "des/time.hpp"

namespace colcom::des {
class Engine;
}

namespace colcom::check {

enum class Mode { off, report, strict };

enum class Rule {
  message_race,
  deadlock,
  collective_mismatch,
  datatype_overlap,
  buffer_mutation,
  io_overlap,
  hint_mismatch,
  replicated_divergence,
  explore,
  payload_sum,
};

/// Stable rule identifier ("CHK-RACE", ...) used in messages, metrics and
/// docs/CORRECTNESS.md.
const char* rule_id(Rule r);

/// One finding. `ranks` lists every rank involved (receiver first for
/// races, all blocked ranks for deadlocks, the two disagreeing ranks for
/// collective mismatches).
struct Diagnostic {
  Rule rule = Rule::message_race;
  std::vector<int> ranks;
  std::string message;
  des::SimTime at = 0;
};

/// Thrown on any finding in strict mode.
class Violation : public std::runtime_error {
 public:
  explicit Violation(Diagnostic d);
  const Diagnostic& diagnostic() const { return diag_; }

 private:
  Diagnostic diag_;
};

/// A blocking p2p operation registered for the deadlock analysis while its
/// owning fiber waits. `peer < 0` means a wildcard source.
struct PendingOp {
  enum class Kind : std::uint8_t { none, send, recv };
  Kind kind = Kind::none;
  int self = -1;
  int peer = -1;
  int tag = 0;
  bool tag_any = false;
  bool rendezvous = false;
  std::uint64_t bytes = 0;
};

/// Signature of one collective call, compared slot-by-slot across ranks.
/// `kind` is the caller's collective enum (opaque to the checker); fields a
/// given collective does not use stay at their defaults on every rank and
/// compare equal. `compare_shape = false` limits the check to the kind
/// (alltoallv, whose per-peer counts legitimately differ per rank).
struct CollCall {
  int kind = 0;
  const char* name = "";
  int root = -1;
  std::uint64_t bytes = 0;
  int prim = -1;
  int op = -1;
  std::uint64_t sig = 0;
  bool compare_shape = true;
};

/// Sampled FNV-1a over the buffer: length plus a 64 KiB window from each
/// end. Deterministic, cheap for multi-MB shuffle payloads, and still
/// catches realistic reuse patterns (clear-and-refill, realloc).
std::uint64_t checksum(std::span<const std::byte> bytes);

/// Names an internal (negative) tag for diagnostics. Modules register their
/// reserved tags once; unknown tags render as the bare number.
void register_tag(int tag, std::string name);
/// Names the half-open tag range [lo, hi) for diagnostics — used by
/// families of derived tags (per-attempt salted data-plane tags of
/// resubmitted service slices) too numerous to enumerate. Exact
/// registrations take precedence over ranges.
void register_tag_range(int lo, int hi, std::string name);
std::string describe_tag(int tag);

class Checker {
 public:
  explicit Checker(Mode mode = Mode::strict);
  ~Checker();

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// Installed checker, or nullptr. Every hook in des/mpi guards on this
  /// single pointer load, so an absent checker costs nothing.
  static Checker* current();

  /// Makes this checker current (stacked: uninstall restores the previous
  /// one, so a CheckSession nests inside an env-installed checker).
  void install();
  void uninstall();

  Mode mode() const { return mode_; }
  const std::vector<Diagnostic>& findings() const { return findings_; }
  std::size_t count(Rule r) const;
  void clear() { findings_.clear(); }

  /// Suppresses the per-finding stderr line in report mode. The Explorer
  /// runs thousands of executions expecting some to fail; it reads
  /// findings() instead of the console.
  void set_quiet(bool quiet) { quiet_ = quiet; }

  // --- world lifecycle (called by mpi::Runtime) ---

  /// Resets per-world state. Unconditional: a world whose run() threw never
  /// reaches end_world(), and the next begin_world must not inherit it.
  void begin_world(des::Engine& engine, int nprocs);
  void end_world();

  // --- hooks (called by des/mpi internals; no-ops outside a world) ---

  /// A send was posted. Ticks the sender's vector clock, snapshots it, and
  /// returns the nonzero id the envelope carries to on_matched().
  std::uint64_t on_send_posted(int src, int dst, int tag, std::uint64_t bytes,
                               bool rendezvous);

  /// A send was matched to a receive posted as (want_src, want_tag), with
  /// -1 as the wildcard. Runs the race analysis for wildcard receives and
  /// merges the sender's clock into the receiver's. `failed` marks poisoned
  /// deliveries (retransmit budget exhausted) — bookkeeping only.
  void on_matched(int dst, std::uint64_t send_id, int want_src, int want_tag,
                  bool failed);

  /// The current fiber starts/stops blocking on `op` (deadlock registry).
  void on_wait_begin(const PendingOp& op);
  void on_wait_end();

  /// Completed send: recompute the buffer checksum and compare with the
  /// value sampled at post time (CHK-BUF).
  void verify_send_buffer(const PendingOp& op, std::span<const std::byte> buf,
                          std::uint64_t posted_sum);

  /// A message is being handed to its receiver: recompute the payload
  /// checksum and compare with the value sampled when the send was posted
  /// (CHK-SUM). Runs in the delivery funnel, so eager and rendezvous
  /// envelopes alike are verified before the receive buffer is filled.
  void verify_payload(int src, int dst, int tag,
                      std::span<const std::byte> payload,
                      std::uint64_t posted_sum);

  /// A rank entered a collective (CHK-COLL sequence check).
  void on_collective(int rank, const CollCall& call);

  /// A rank opened a file collectively with MPI-IO hints whose signature is
  /// `sig` (CHK-HINT). Hints must be identical across all ranks of one
  /// collective open — MPI leaves divergent hints undefined, and ROMIO's
  /// two-phase plan (cb_buffer_size, cb_nodes, alignment) silently follows
  /// whichever rank's values reach the aggregators. `desc` renders the
  /// offending rank's hint values in the finding.
  void on_collective_open(int rank, std::uint64_t sig,
                          const std::string& desc);

  /// `rank`'s process died mid-run (mpi::World::kill_rank). A dead rank is
  /// exempt from the end-of-world "same number of collectives" check — it
  /// legitimately completed fewer.
  void on_rank_dead(int rank);

  /// The datatype layer built an overlapping typemap (CHK-DTYPE).
  void on_datatype_overlap(const std::string& what);

  /// The engine drained its queue with `blocked` actors still waiting
  /// (CHK-DEADLOCK).
  void on_stall(const std::vector<int>& blocked);

  /// CHK-REP: `rank` made the control-plane decision of kind `kind`
  /// ("ft.agree", "svc.pick", "svc.alloc", "core.replan", ...) whose FNV
  /// digest is `digest`. The repo's foundational contract is that every rank
  /// computes the identical decision sequence from replicated data, so the
  /// rank's Nth decision of a kind is cross-checked against the first rank
  /// to reach that slot. `desc` renders the decision as space-separated
  /// `key=value` fields; on a digest mismatch the finding names the first
  /// divergent step and diffs the fields. Dead ranks simply stop
  /// contributing to a stream, which is legal.
  void on_decision(int rank, const char* kind, std::uint64_t digest,
                   const std::string& desc);

  // --- staging epoch markers (called by colcom::stage; CHK-IO) ---
  //
  // `ctx` scopes a marker to one communicator/staging context (cf.
  // romio::Hints::context, stage::StageConfig::check_ctx): two staging
  // areas on one rank driven by different communicators carry different
  // contexts, and a flush of one context must not silence the other's
  // dirty extents — MPI-IO's sync-barrier-sync discipline is per file
  // handle, not per process.

  /// `rank` staged a write-behind extent [offset, offset+length) of `file`
  /// under context `ctx`; it is dirty until that rank's next flush epoch
  /// marker covering `ctx`.
  void on_stage_write(int rank, int file, std::uint64_t offset,
                      std::uint64_t length, int ctx = 0);
  /// Flush epoch marker: `rank`'s staged extents of context `ctx` are now
  /// persistent and ordered before any later read. `ctx = -1` closes every
  /// context of the rank (a process-wide fsync).
  void on_stage_flush(int rank, int ctx = -1);
  /// `rank` acquires [offset, offset+length) of `file` through the staging
  /// layer (cache probe or demand read) under context `ctx`. Overlap with
  /// any unflushed staged extent — of this context or another — is reported
  /// as CHK-IO; cross-context overlaps name the offending communicators.
  void on_stage_read(int rank, int file, std::uint64_t offset,
                     std::uint64_t length, int ctx = 0);

  /// Records a finding: collects it, emits check.* metrics/trace events,
  /// and throws Violation in strict mode.
  void report(Diagnostic d);

 private:
  struct SendRec {
    int src = -1;
    int dst = -1;
    int tag = 0;
    bool rendezvous = false;
    std::uint64_t bytes = 0;
    des::SimTime posted_at = 0;
    // Copy-on-write vector-clock snapshot: `base` is shared with the
    // sender's live clock until the next merge clones it; the sender's own
    // component rides separately so posting a send is O(1).
    std::shared_ptr<const std::vector<std::uint64_t>> vc_base;
    std::uint64_t vc_own = 0;
  };
  struct RankClock {
    std::shared_ptr<std::vector<std::uint64_t>> base;
    std::uint64_t own = 0;
  };
  struct CollSlot {
    CollCall call;
    int first_rank = -1;
  };
  struct OpenSlot {
    std::uint64_t sig = 0;
    std::string desc;
    int first_rank = -1;
  };
  struct StagedWrite {
    int rank = -1;
    int file = -1;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    int ctx = 0;  ///< staging/communicator context the write belongs to
  };
  struct DecisionSlot {
    std::uint64_t digest = 0;
    std::string desc;
    int first_rank = -1;
  };
  struct DecisionStream {
    std::vector<DecisionSlot> slots;   // slot n: the stream's nth decision
    std::vector<std::uint64_t> seq;    // per rank: next slot index
  };

  static std::uint64_t vc_at(const SendRec& r, int i) {
    return i == r.src ? r.vc_own : (*r.vc_base)[static_cast<std::size_t>(i)];
  }
  bool happens_before(const SendRec& a, const SendRec& b) const;
  std::string describe(const PendingOp& op) const;
  std::string describe(const CollCall& c) const;

  Mode mode_;
  Checker* prev_ = nullptr;
  bool installed_ = false;
  bool quiet_ = false;
  std::vector<Diagnostic> findings_;

  // Per-world state.
  des::Engine* engine_ = nullptr;
  int nprocs_ = 0;
  std::uint64_t next_send_id_ = 0;
  std::map<std::pair<int, std::uint64_t>, SendRec> inflight_;  // (dst, id)
  std::vector<RankClock> clocks_;
  std::vector<PendingOp> pending_;  // by actor id
  std::vector<std::uint64_t> coll_seq_;
  std::vector<CollSlot> colls_;
  std::vector<std::uint64_t> open_seq_;
  std::vector<OpenSlot> opens_;
  std::vector<char> rank_dead_;  // exempt from the collective-count check
  std::vector<StagedWrite> staged_dirty_;  // unflushed write-behind extents
  std::map<std::string, DecisionStream> decisions_;  // CHK-REP, by kind

  // Volume counters surfaced as check.* metrics at end_world.
  std::uint64_t sends_tracked_ = 0;
  std::uint64_t wildcard_matches_ = 0;
  std::uint64_t collectives_checked_ = 0;
  std::uint64_t payloads_checked_ = 0;
};

/// RAII install/uninstall, for tests and embedded use:
///   check::CheckSession cs(check::Mode::strict);
///   mpi::Runtime rt(...); rt.run(...);   // runs under the checker
class CheckSession {
 public:
  explicit CheckSession(Mode mode = Mode::strict) : checker_(mode) {
    checker_.install();
  }
  ~CheckSession() { checker_.uninstall(); }

  CheckSession(const CheckSession&) = delete;
  CheckSession& operator=(const CheckSession&) = delete;

  Checker& checker() { return checker_; }

 private:
  Checker checker_;
};

/// COLCOM_CHECK: unset/"0"/"off" -> off, "report" -> report mode, anything
/// else ("1", "strict") -> strict mode.
Mode env_mode();

/// Installs a process-lifetime checker according to COLCOM_CHECK unless a
/// checker is already current. Returns the current checker (or nullptr when
/// checking is off). Called by mpi::Runtime's constructor, so every world
/// in every binary honors the variable without code changes.
Checker* install_from_env();

}  // namespace colcom::check

// check::Explorer — stateless model checking of DES schedules (CHK-EXPLORE).
//
// One chaos seed tests one schedule; the warm-ship deadlock of the
// fault-tolerance line survived hundreds of green runs because the buggy
// interleaving needed a particular timer/message order. The Explorer instead
// *enumerates* schedules: it installs a des::ScheduleController, runs the
// world under a recorded choice trace, then re-executes with alternative
// picks at the choice points that could actually change the outcome —
// CHESS-style stateless re-execution with dynamic partial-order reduction
// over the event footprints the engine seam reports (actor resumes, mailbox
// accesses).
//
// Pruning, in order:
//   1. DPOR      an alternative is re-executed only when it is dependent
//                (footprint intersection, conservative when unknown) with
//                some event dispatched between the choice point and its own
//                dispatch — independent reorderings cannot change state.
//   2. delay     at most `delay_bound` non-default picks per execution
//     bounding   (CHESS's result: most bugs need very few preemptions).
//   3. sleep-set style dedup: a forced prefix is executed at most once.
//
// Violations are anything the normal Checker rules flag under any explored
// schedule, an exception escaping the world, or an execution exceeding
// `max_steps` dispatches (livelock — e.g. a crash-detection poll re-arming
// forever). The violating schedule serializes to a small text replay file
// that `Explorer::replay()` re-executes deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "des/time.hpp"

namespace colcom::check {

struct ExploreConfig {
  /// Execution budget: the explorer stops after this many world runs.
  int max_executions = 5000;
  /// Max non-default picks per execution (CHESS delay bounding).
  int delay_bound = 2;
  /// Per-execution dispatch budget; exceeding it is reported as a hang.
  std::uint64_t max_steps = 500'000;
  /// Events within [t, t + tie_window] of the earliest runnable event count
  /// as simultaneous. 0 = exact-timestamp ties only; a small positive window
  /// additionally exposes timer-vs-message races.
  des::SimTime tie_window = 0;
  /// Stop at the first violating schedule (default) or keep exploring.
  bool stop_at_first = true;
  /// When nonempty, the first violating schedule is serialized here.
  std::string replay_file;
};

struct ExploreStats {
  std::uint64_t executions = 0;
  std::uint64_t choice_points = 0;  ///< pick() calls across all executions
  /// Branches full enumeration would have queued (sum of ties-1 per point).
  std::uint64_t naive_branches = 0;
  /// Branches actually queued after DPOR dependence pruning.
  std::uint64_t dpor_branches = 0;
  /// Branches skipped because their forced prefix was already executed.
  std::uint64_t sleep_hits = 0;
  /// Branches skipped by the delay bound.
  std::uint64_t delay_pruned = 0;
  /// Executions aborted at max_steps.
  std::uint64_t hangs = 0;
};

struct ExploreResult {
  bool violation_found = false;
  /// Rule::explore wrapper naming the violating schedule + inner finding.
  Diagnostic first;
  /// All findings of the violating execution (inner rules: CHK-RACE, ...).
  std::vector<Diagnostic> schedule_findings;
  /// Forced choice prefix (engine seq numbers) reproducing the violation.
  std::vector<std::uint64_t> schedule;
  ExploreStats stats;
  /// True when the budget ran out with unexplored branches left.
  bool budget_exhausted = false;
};

/// Parsed replay file (see write_replay_file for the format).
struct ReplaySpec {
  des::SimTime tie_window = 0;
  std::uint64_t max_steps = 500'000;
  std::vector<std::uint64_t> schedule;
};

/// Serializes a violating schedule: a `# colcom explore replay v1` header,
/// `tie_window <seconds>` and `max_steps <n>` lines, then one `pick <seq>`
/// line per forced choice. Text so counterexamples diff and hand-edit.
void write_replay_file(const std::string& path, des::SimTime tie_window,
                       std::uint64_t max_steps,
                       const std::vector<std::uint64_t>& schedule);
ReplaySpec read_replay_file(const std::string& path);

class Explorer {
 public:
  explicit Explorer(ExploreConfig cfg = {});

  /// Explores `world`. The callable must build a *fresh* world per call
  /// (tests construct a new mpi::Runtime inside it); it is invoked up to
  /// max_executions times. Emits check.explore.* metrics when a tracer is
  /// active.
  ExploreResult run(const std::function<void()>& world);

  /// Re-executes `world` once under the forced schedule from `replay_file`
  /// and returns that execution's findings (a hang is itself a finding).
  static std::vector<Diagnostic> replay(const std::function<void()>& world,
                                        const std::string& replay_file);

  /// Shrinks a violating schedule to a shorter forced prefix that still
  /// violates, by dropping trailing choices while the violation persists.
  std::vector<std::uint64_t> minimize(const std::function<void()>& world,
                                      std::vector<std::uint64_t> schedule);

 private:
  struct Execution;
  Execution run_once(const std::function<void()>& world,
                     const std::vector<std::uint64_t>& forced);

  ExploreConfig cfg_;
};

}  // namespace colcom::check

#include "wrf/analysis.hpp"

#include "util/assert.hpp"

namespace colcom::wrf {

core::ObjectIO make_task_object(const ncio::Dataset& ds, const char* var_name,
                                mpi::Op op, mpi::Comm& comm,
                                const TaskOptions& opt) {
  const auto var = ds.var(var_name);
  const auto& info = ds.info(var);
  COLCOM_EXPECT(info.dims.size() == 3);
  const std::uint64_t ny = info.dims[1];
  const auto nprocs = static_cast<std::uint64_t>(comm.size());
  const auto rank = static_cast<std::uint64_t>(comm.rank());
  COLCOM_EXPECT_MSG(ny >= nprocs, "need at least one y row per rank");
  // Contiguous y band per rank, all times and x: a strided (non-contiguous)
  // file pattern with nt runs per rank.
  const std::uint64_t base = ny / nprocs;
  const std::uint64_t extra = ny % nprocs;
  const std::uint64_t y0 = rank * base + std::min(rank, extra);
  const std::uint64_t rows = base + (rank < extra ? 1 : 0);

  core::ObjectIO obj;
  obj.var = var;
  obj.start = {0, y0, 0};
  obj.count = {info.dims[0], rows, info.dims[2]};
  obj.op = std::move(op);
  obj.reduce_mode = opt.reduce_mode;
  obj.blocking = !opt.use_cc;
  obj.hints = opt.hints;
  // The traditional baseline is a *blocking* collective read (PnetCDF's
  // get_vara_all), as in the paper's comparison; CC is the non-blocking
  // framework.
  obj.hints.pipelined = opt.hints.pipelined && opt.use_cc;
  obj.compute.seconds_per_byte =
      opt.scan_bytes_per_second > 0 ? 1.0 / opt.scan_bytes_per_second : 0.0;
  return obj;
}

namespace {
TaskResult run_task(mpi::Comm& comm, const ncio::Dataset& ds,
                    const char* var_name, mpi::Op op, const TaskOptions& opt) {
  auto obj = make_task_object(ds, var_name, std::move(op), comm, opt);
  core::CcOutput out;
  TaskResult res;
  res.stats = core::collective_compute(comm, ds, obj, out);
  COLCOM_ENSURE_MSG(out.has_global, "analysis produced no result");
  res.value = out.global_as<float>();
  return res;
}
}  // namespace

TaskResult min_slp(mpi::Comm& comm, const ncio::Dataset& ds,
                   const TaskOptions& opt) {
  return run_task(comm, ds, "SLP", mpi::Op::min(), opt);
}

TaskResult max_wind(mpi::Comm& comm, const ncio::Dataset& ds,
                    const TaskOptions& opt) {
  return run_task(comm, ds, "W10", mpi::Op::max(), opt);
}

}  // namespace colcom::wrf

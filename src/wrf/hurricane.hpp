// Synthetic WRF-like hurricane output.
//
// The paper evaluates on two analysis tasks from a WRF hurricane simulation:
// "Min Sea-Level Pressure (hPa)" and "Max 10 m wind speed (knots)". Real WRF
// output is not available offline, so the fields are generated from a
// Holland-profile moving vortex: a pressure low tracking across the domain
// with the corresponding tangential gradient wind. The fields are closed
// form, so every analysis result has exact ground truth, and they are served
// through ncio generated variables so the whole I/O stack (striping,
// two-phase aggregation, logical map) is exercised exactly as with real
// data.
#pragma once

#include <cstdint>
#include <string>

#include "ncio/dataset.hpp"
#include "pfs/pfs.hpp"

namespace colcom::wrf {

struct HurricaneConfig {
  std::uint64_t nt = 24;   ///< output time steps
  std::uint64_t ny = 256;  ///< south-north cells
  std::uint64_t nx = 256;  ///< west-east cells

  double background_hpa = 1013.25;  ///< ambient sea-level pressure
  double depth_hpa = 62.0;          ///< central pressure deficit
  double rmax_cells = 14.0;         ///< radius of maximum wind
  double holland_b = 1.6;           ///< Holland shape parameter
  double vmax_knots = 118.0;        ///< peak 10 m wind

  // Storm track: linear from (x0, y0) to (x1, y1) in fractional domain
  // coordinates over the nt steps.
  double x0 = 0.15, y0 = 0.75;
  double x1 = 0.85, y1 = 0.25;
};

/// Sea-level pressure (hPa) at cell (t, y, x).
double slp_at(const HurricaneConfig& cfg, std::uint64_t t, std::uint64_t y,
              std::uint64_t x);

/// Eastward / northward 10 m wind components (knots).
double u10_at(const HurricaneConfig& cfg, std::uint64_t t, std::uint64_t y,
              std::uint64_t x);
double v10_at(const HurricaneConfig& cfg, std::uint64_t t, std::uint64_t y,
              std::uint64_t x);

/// 10 m wind speed magnitude (knots).
double wind_speed_at(const HurricaneConfig& cfg, std::uint64_t t,
                     std::uint64_t y, std::uint64_t x);

/// Builds the dataset with variables SLP, U10, V10, W10, each (nt, ny, nx)
/// float32, generator-backed.
ncio::Dataset make_hurricane_dataset(pfs::Pfs& fs, const std::string& name,
                                     const HurricaneConfig& cfg);

}  // namespace colcom::wrf

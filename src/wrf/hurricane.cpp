#include "wrf/hurricane.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace colcom::wrf {

namespace {

struct StormState {
  double cx = 0;  ///< storm center, cells
  double cy = 0;
};

StormState center_at(const HurricaneConfig& cfg, std::uint64_t t) {
  const double f =
      cfg.nt <= 1 ? 0.0
                  : static_cast<double>(t) / static_cast<double>(cfg.nt - 1);
  StormState s;
  s.cx = (cfg.x0 + (cfg.x1 - cfg.x0) * f) * static_cast<double>(cfg.nx);
  s.cy = (cfg.y0 + (cfg.y1 - cfg.y0) * f) * static_cast<double>(cfg.ny);
  return s;
}

/// Distance from the storm center in cells; dx/dy out-parameters for wind
/// direction.
double radius(const HurricaneConfig& cfg, std::uint64_t t, std::uint64_t y,
              std::uint64_t x, double* dx_out, double* dy_out) {
  const auto s = center_at(cfg, t);
  const double dx = static_cast<double>(x) - s.cx;
  const double dy = static_cast<double>(y) - s.cy;
  if (dx_out != nullptr) *dx_out = dx;
  if (dy_out != nullptr) *dy_out = dy;
  return std::sqrt(dx * dx + dy * dy);
}

/// Holland (1980) pressure profile factor exp(-(rm/r)^B).
double holland_factor(const HurricaneConfig& cfg, double r) {
  const double rr = std::max(r, 1e-6);
  return std::exp(-std::pow(cfg.rmax_cells / rr, cfg.holland_b));
}

/// Tangential gradient-wind magnitude, normalized to peak vmax at rmax.
double wind_profile(const HurricaneConfig& cfg, double r) {
  const double rr = std::max(r, 1e-6);
  const double x = std::pow(cfg.rmax_cells / rr, cfg.holland_b);
  // V(r) ∝ sqrt(x * exp(1 - x)); equals 1 at r = rmax (x = 1).
  return cfg.vmax_knots * std::sqrt(x * std::exp(1.0 - x));
}

}  // namespace

double slp_at(const HurricaneConfig& cfg, std::uint64_t t, std::uint64_t y,
              std::uint64_t x) {
  const double r = radius(cfg, t, y, x, nullptr, nullptr);
  // P(r) = Pc + deficit * exp(-(rm/r)^B); Pc = background - depth.
  return cfg.background_hpa - cfg.depth_hpa +
         cfg.depth_hpa * holland_factor(cfg, r);
}

double u10_at(const HurricaneConfig& cfg, std::uint64_t t, std::uint64_t y,
              std::uint64_t x) {
  double dx = 0, dy = 0;
  const double r = radius(cfg, t, y, x, &dx, &dy);
  if (r < 1e-9) return 0.0;
  // Cyclonic (counter-clockwise, northern hemisphere): tangential unit
  // vector is (-dy, dx)/r.
  return wind_profile(cfg, r) * (-dy / r);
}

double v10_at(const HurricaneConfig& cfg, std::uint64_t t, std::uint64_t y,
              std::uint64_t x) {
  double dx = 0, dy = 0;
  const double r = radius(cfg, t, y, x, &dx, &dy);
  if (r < 1e-9) return 0.0;
  return wind_profile(cfg, r) * (dx / r);
}

double wind_speed_at(const HurricaneConfig& cfg, std::uint64_t t,
                     std::uint64_t y, std::uint64_t x) {
  return wind_profile(cfg, radius(cfg, t, y, x, nullptr, nullptr));
}

ncio::Dataset make_hurricane_dataset(pfs::Pfs& fs, const std::string& name,
                                     const HurricaneConfig& cfg) {
  COLCOM_EXPECT(cfg.nt >= 1 && cfg.ny >= 2 && cfg.nx >= 2);
  ncio::DatasetBuilder b(fs, name);
  const std::vector<std::uint64_t> dims{cfg.nt, cfg.ny, cfg.nx};
  b.add_generated_var<float>(
      "SLP", dims, [cfg](std::span<const std::uint64_t> c) {
        return static_cast<float>(slp_at(cfg, c[0], c[1], c[2]));
      });
  b.add_generated_var<float>(
      "U10", dims, [cfg](std::span<const std::uint64_t> c) {
        return static_cast<float>(u10_at(cfg, c[0], c[1], c[2]));
      });
  b.add_generated_var<float>(
      "V10", dims, [cfg](std::span<const std::uint64_t> c) {
        return static_cast<float>(v10_at(cfg, c[0], c[1], c[2]));
      });
  b.add_generated_var<float>(
      "W10", dims, [cfg](std::span<const std::uint64_t> c) {
        return static_cast<float>(wind_speed_at(cfg, c[0], c[1], c[2]));
      });
  return b.finish();
}

}  // namespace colcom::wrf

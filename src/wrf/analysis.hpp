// The paper's two WRF analysis tasks (Sec. IV-C): minimum sea-level
// pressure and maximum 10 m wind speed over a hurricane simulation, each
// runnable through collective computing or the traditional MPI path.
#pragma once

#include "core/object_io.hpp"
#include "core/runtime.hpp"
#include "mpi/comm.hpp"
#include "ncio/dataset.hpp"
#include "wrf/hurricane.hpp"

namespace colcom::wrf {

/// How the analysis runs.
struct TaskOptions {
  bool use_cc = true;  ///< collective computing vs traditional MPI
  core::ReduceMode reduce_mode = core::ReduceMode::all_to_one;
  romio::Hints hints;
  /// Analysis scan rate; the min/max kernels stream at roughly memory
  /// bandwidth on one core.
  double scan_bytes_per_second = 2.0e9;
};

struct TaskResult {
  float value = 0;        ///< the min pressure / max wind
  core::CcStats stats;    ///< this rank's runtime breakdown
};

/// Decomposes the (nt, ny, nx) domain over ranks: each rank takes a
/// contiguous band of y rows across all times — the non-contiguous subset
/// access pattern the paper highlights.
core::ObjectIO make_task_object(const ncio::Dataset& ds, const char* var_name,
                                mpi::Op op, mpi::Comm& comm,
                                const TaskOptions& opt);

/// 'Min Sea-Level Pressure (hPa)'.
TaskResult min_slp(mpi::Comm& comm, const ncio::Dataset& ds,
                   const TaskOptions& opt);

/// 'Max 10m wind speed (knots)'.
TaskResult max_wind(mpi::Comm& comm, const ncio::Dataset& ds,
                    const TaskOptions& opt);

}  // namespace colcom::wrf

#include "wrf/writer.hpp"

#include <cstring>

#include "fault/fault.hpp"
#include "util/assert.hpp"

namespace colcom::wrf {

Band writer_band(const HurricaneConfig& cfg, int index, int nprocs) {
  COLCOM_EXPECT(nprocs >= 1 && index >= 0 && index < nprocs);
  const std::uint64_t n = static_cast<std::uint64_t>(nprocs);
  const std::uint64_t i = static_cast<std::uint64_t>(index);
  const std::uint64_t base = cfg.ny / n;
  const std::uint64_t extra = cfg.ny % n;
  Band b;
  b.y0 = i * base + std::min(i, extra);
  b.rows = base + (i < extra ? 1 : 0);
  return b;
}

void fill_band(const HurricaneConfig& cfg, int var, std::uint64_t t,
               const Band& band, std::span<float> out) {
  COLCOM_EXPECT(var >= 0 && var < 4);
  COLCOM_EXPECT(out.size() >= band.rows * cfg.nx);
  std::size_t i = 0;
  for (std::uint64_t y = band.y0; y < band.y0 + band.rows; ++y) {
    for (std::uint64_t x = 0; x < cfg.nx; ++x, ++i) {
      double v = 0;
      switch (var) {
        case 0: v = slp_at(cfg, t, y, x); break;
        case 1: v = u10_at(cfg, t, y, x); break;
        case 2: v = v10_at(cfg, t, y, x); break;
        default: v = wind_speed_at(cfg, t, y, x); break;
      }
      out[i] = static_cast<float>(v);
    }
  }
}

ncio::Dataset make_hurricane_sink(pfs::Pfs& fs, const std::string& name,
                                  const HurricaneConfig& cfg) {
  COLCOM_EXPECT(cfg.nt >= 1 && cfg.ny >= 2 && cfg.nx >= 2);
  ncio::DatasetBuilder b(fs, name);
  const std::vector<std::uint64_t> dims{cfg.nt, cfg.ny, cfg.nx};
  for (const char* v : kHurricaneVars) {
    b.add_var(v, mpi::Prim::f32, dims);
  }
  return b.finish();
}

// --- FileWriter ---

FileWriter::FileWriter(mpi::Comm& comm, const ncio::Dataset& ds,
                       HurricaneConfig cfg)
    : comm_(&comm), ds_(&ds), cfg_(cfg) {
  for (std::size_t v = 0; v < kHurricaneVars.size(); ++v) {
    vars_[v] = ds.var(kHurricaneVars[v]);
    COLCOM_EXPECT_MSG(vars_[v].valid(), "sink dataset lacks a field");
  }
}

void FileWriter::write_step(std::uint64_t t) {
  const Band b = writer_band(cfg_, comm_->rank(), comm_->size());
  buf_.resize(static_cast<std::size_t>(b.rows * cfg_.nx));
  const std::uint64_t start[3] = {t, b.y0, 0};
  const std::uint64_t count[3] = {1, b.rows, cfg_.nx};
  for (int v = 0; v < 4; ++v) {
    fill_band(cfg_, v, t, b, buf_);
    ds_->put_vara_all<float>(*comm_, vars_[static_cast<std::size_t>(v)],
                             start, count, buf_);
  }
}

// --- StreamWriter ---

StreamWriter::StreamWriter(stream::Engine& se, mpi::Comm& comm,
                           const ncio::Dataset& ds,
                           const std::string& topic_prefix,
                           HurricaneConfig cfg, stage::StagingArea* area)
    : comm_(&comm), cfg_(cfg) {
  for (std::size_t v = 0; v < kHurricaneVars.size(); ++v) {
    const ncio::VarId id = ds.var(kHurricaneVars[v]);
    COLCOM_EXPECT_MSG(id.valid(), "sink dataset lacks a field");
    const ncio::VarInfo& info = ds.info(id);
    COLCOM_EXPECT(info.dims.size() == 3 && info.dims[0] == cfg_.nt);
    stream::TopicLayout lay;
    lay.file = ds.file();
    lay.base = info.file_offset;
    lay.step_bytes = info.byte_size() / cfg_.nt;
    lay.n_steps = cfg_.nt;
    // Every rank of the world runs a StreamWriter: end-of-stream must wait
    // for all of them, even ones that have not registered yet (a rank can
    // lag behind inside a prior I/O collective's flush).
    lay.producers = comm.size();
    stream::Topic& topic =
        se.topic(topic_prefix + "/" + kHurricaneVars[v], lay);
    producers_[v] = std::make_unique<stream::Producer>(topic, comm, area);
  }
}

void StreamWriter::write_step(std::uint64_t t) {
  const int me = comm_->rank();
  const int n = comm_->size();
  // The re-target protocol: besides its own band, this rank takes over the
  // band of every dead rank whose next alive successor (cyclic scan
  // upward) is this rank. The fields are closed-form, so any survivor can
  // re-derive a dead rank's rows. Takeovers backfill every *unretired*
  // step up to t, not just t itself — the dead rank may have stopped
  // several steps behind the survivors, and a step it never covered would
  // otherwise stay incomplete forever. covered() skips ranges the dead
  // rank (or another survivor) already published, so backfills are cheap
  // and idempotent. This scan runs before the own-band publish (which may
  // block under back-pressure): retirement can always advance past the
  // backfilled steps, so blocked producers eventually resume and re-scan.
  for (int d = 0; d < n; ++d) {
    if (comm_->alive(d)) continue;
    int succ = -1;
    for (int k = 1; k <= n; ++k) {
      const int c = (d + k) % n;
      if (comm_->alive(c)) {
        succ = c;
        break;
      }
    }
    if (succ != me) continue;
    const Band b = writer_band(cfg_, d, n);
    if (b.rows == 0) continue;
    buf_.resize(static_cast<std::size_t>(b.rows * cfg_.nx));
    const std::uint64_t off = b.y0 * cfg_.nx * sizeof(float);
    const std::uint64_t len = b.rows * cfg_.nx * sizeof(float);
    for (int v = 0; v < 4; ++v) {
      stream::Producer& p = *producers_[static_cast<std::size_t>(v)];
      for (std::uint64_t s = p.topic().retired_steps(); s <= t; ++s) {
        if (p.topic().covered(s, off, len)) continue;
        fill_band(cfg_, v, s, b, buf_);
        p.publish(s, off, std::as_bytes(std::span<const float>(buf_)),
                  /*takeover=*/true);
      }
    }
  }
  const Band b = writer_band(cfg_, me, n);
  if (b.rows == 0) return;
  buf_.resize(static_cast<std::size_t>(b.rows * cfg_.nx));
  const std::uint64_t off = b.y0 * cfg_.nx * sizeof(float);
  for (int v = 0; v < 4; ++v) {
    fill_band(cfg_, v, t, b, buf_);
    producers_[static_cast<std::size_t>(v)]->publish(
        t, off, std::as_bytes(std::span<const float>(buf_)));
  }
}

void StreamWriter::close() {
  for (auto& p : producers_) p->close();
}

bool StreamWriter::run(double step_interval_s) {
  try {
    for (std::uint64_t t = 0; t < cfg_.nt; ++t) {
      if (step_interval_s > 0) comm_->compute(step_interval_s);
      write_step(t);
    }
    close();
    return true;
  } catch (const fault::Error&) {
    // stream_publish crash point: the producer is gone. The crashing
    // publish already failed its own topic; the simulation is one process,
    // so its other fields die with it — fail them now (idempotent) rather
    // than at destruction, or their consumers would block until then.
    for (auto& p : producers_) p->topic().fail(*comm_);
    return false;
  } catch (const mpi::RankStop&) {
    // The rank's process died (consumer-death scenario): the Producer
    // destructors deregistered quietly and the survivors re-target this
    // rank's rows. Absorb the unwind — only Runtime::run's rank wrapper
    // absorbs RankStop, and this is a spawned helper fiber.
    return false;
  }
}

}  // namespace colcom::wrf

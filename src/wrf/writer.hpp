// The WRF producer half: writes the hurricane fields step by step, either
// through the PFS (the classic file barrier: simulate, write, analyze) or
// through colcom::stream topics (in-transit: the analysis consumes each
// step's bytes while the simulation keeps running).
//
// Both paths produce their bytes with the same fill_band() arithmetic, so a
// streaming analysis is memcmp-bit-identical to a file-based one — the
// in-transit coupling changes the schedule, never the data.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ncio/dataset.hpp"
#include "stream/stream.hpp"
#include "wrf/hurricane.hpp"

namespace colcom::wrf {

/// The four fields every step emits, in variable order.
inline constexpr std::array<const char*, 4> kHurricaneVars = {"SLP", "U10",
                                                              "V10", "W10"};

/// Row-band domain decomposition of the (ny, nx) grid over `nprocs`
/// writers: writer `index` owns rows [y0, y0 + rows).
struct Band {
  std::uint64_t y0 = 0;
  std::uint64_t rows = 0;
};
Band writer_band(const HurricaneConfig& cfg, int index, int nprocs);

/// Fills `out` (band.rows * cfg.nx floats) with variable `var` (index into
/// kHurricaneVars) of step t over the band's rows. The single arithmetic
/// both write paths share: file writes and stream publishes alike hand off
/// exactly these bytes, which is what makes the two runs bit-identical.
void fill_band(const HurricaneConfig& cfg, int var, std::uint64_t t,
               const Band& band, std::span<float> out);

/// Builds the writable (memory-backed, zero-initialized) twin of
/// make_hurricane_dataset: same variables, dims and file layout. A
/// FileWriter fills it step by step; a stream-mode run uses it for layout
/// only (slab requests, plans) while the bytes travel through the stream.
ncio::Dataset make_hurricane_sink(pfs::Pfs& fs, const std::string& name,
                                  const HurricaneConfig& cfg);

/// File-based producer: each step is a collective put_vara_all of every
/// variable's band rows — the PFS round-trip the stream removes. All ranks
/// call write_step collectively for the same t.
class FileWriter {
 public:
  FileWriter(mpi::Comm& comm, const ncio::Dataset& ds, HurricaneConfig cfg);

  void write_step(std::uint64_t t);

 private:
  mpi::Comm* comm_;
  const ncio::Dataset* ds_;
  HurricaneConfig cfg_;
  std::array<ncio::VarId, 4> vars_;
  std::vector<float> buf_;
};

/// Stream-based producer half of one rank: per-variable Producers over
/// topics named "<prefix>/<var>" whose layouts mirror the sink dataset, so
/// stream byte addresses and file byte addresses coincide. Run it from a
/// spawned helper fiber (mpi::Comm::spawn_thread) so the simulation
/// overlaps the analysis on the same rank.
class StreamWriter {
 public:
  StreamWriter(stream::Engine& se, mpi::Comm& comm, const ncio::Dataset& ds,
               const std::string& topic_prefix, HurricaneConfig cfg,
               stage::StagingArea* area = nullptr);

  /// Publishes this rank's rows of step t for every variable — plus any
  /// dead rank's rows deterministically re-targeted to this rank (takeover
  /// publishes skip ranges the dead rank already covered).
  void write_step(std::uint64_t t);
  void close();

  /// The whole producer loop: charge step_interval_s of simulation per
  /// step, publish it, close at the end. Returns false when the producer
  /// died at a stream_publish crash point (the topics are already failed —
  /// every consumer sees the structured error) or when this rank's process
  /// died (RankStop is absorbed: survivors re-target this rank's rows).
  bool run(double step_interval_s = 0);

  stream::Topic& topic(int var) { return producers_[var]->topic(); }

 private:
  mpi::Comm* comm_;
  HurricaneConfig cfg_;
  std::array<std::unique_ptr<stream::Producer>, 4> producers_;
  std::vector<float> buf_;
};

}  // namespace colcom::wrf

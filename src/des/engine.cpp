#include "des/engine.hpp"

#include <algorithm>
#include <utility>

#include "des/sched.hpp"
#include "util/assert.hpp"

namespace colcom::des {

Engine::Engine() = default;

Engine::~Engine() {
  // Unlink live sinks so a sink outliving this engine (a tracer spanning
  // several runtimes) neither dangles nor tries to deregister later.
  for (TraceSink* s : sinks_) {
    auto& e = s->engines_;
    e.erase(std::remove(e.begin(), e.end(), this), e.end());
    s->on_engine_destroyed();
  }
}

TraceSink::~TraceSink() {
  while (!engines_.empty()) engines_.back()->remove_trace_sink(this);
}

void Engine::add_trace_sink(TraceSink* sink) {
  COLCOM_EXPECT(sink != nullptr);
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
    sink->engines_.push_back(this);
  }
}

void Engine::remove_trace_sink(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  auto& e = sink->engines_;
  e.erase(std::remove(e.begin(), e.end(), this), e.end());
  if (legacy_listener_ == sink) legacy_listener_ = nullptr;
}

void Engine::set_cpu_listener(CpuListener* listener) {
  if (legacy_listener_ != nullptr) remove_trace_sink(legacy_listener_);
  legacy_listener_ = listener;
  if (listener != nullptr) add_trace_sink(listener);
}

ActorHandle Engine::spawn(std::string name, int node,
                          std::function<void()> body,
                          std::size_t stack_bytes) {
  COLCOM_EXPECT(body != nullptr);
  const int id = static_cast<int>(actors_.size());
  auto actor = std::make_unique<Actor>();
  actor->name = std::move(name);
  actor->node = node;
  actor->fiber = std::make_unique<Fiber>(stack_bytes, std::move(body));
  fiber_of_actor_.push_back(actor->fiber.get());
  actors_.push_back(std::move(actor));
  for (TraceSink* s : sinks_) {
    const Actor& a = *actors_.back();
    s->on_actor_spawn(id, a.node, a.name, now_);
  }
  // First dispatch happens through the queue so spawn order == start order.
  schedule(now_, [this, id] { resume_actor(id); });
  return ActorHandle{id};
}

void Engine::schedule(SimTime t, std::function<void()> fn) {
  if (t < now_ && ScheduleController::current() != nullptr) {
    // Under a controller with a nonzero tie window the clock may have run
    // ahead of a deadline computed before the pick; fire such events asap.
    t = now_;
  }
  COLCOM_EXPECT_MSG(t >= now_, "cannot schedule an event in the past");
  queue_.push(Event{t, seq_++, std::move(fn)});
}

void Engine::run() {
  COLCOM_EXPECT_MSG(!in_actor(), "run() must be called from the host context");
  while (!queue_.empty()) {
    Event ev = pop_next_event();
    if (ScheduleController::current() == nullptr) {
      COLCOM_ENSURE_MSG(ev.time >= now_, "virtual clock must be monotonic");
      now_ = ev.time;
    } else {
      // A controller may dispatch the later end of a tie window first; the
      // re-queued earlier events then fire at a clock that has already moved.
      now_ = std::max(now_, ev.time);
    }
    ++events_dispatched_;
    ev.fn();
    if (pending_exception_) {
      std::exception_ptr e = std::exchange(pending_exception_, nullptr);
      std::rethrow_exception(e);
    }
  }
  if (stall_handler_ != nullptr) {
    std::vector<int> blocked;
    for (std::size_t i = 0; i < actors_.size(); ++i) {
      if (actors_[i]->blocked) blocked.push_back(static_cast<int>(i));
    }
    if (!blocked.empty()) stall_handler_(blocked);
  }
}

Engine::Event Engine::pop_next_event() {
  // priority_queue::top() is const; events are copied out before pop.
  Event ev = queue_.top();
  queue_.pop();
  ScheduleController* sc = ScheduleController::current();
  if (sc == nullptr) return ev;
  // Collect every event runnable within the tie window and let the
  // controller choose; the rest go back on the queue untouched (their seq
  // numbers keep the default order stable for the next round).
  const SimTime window_end = ev.time + sc->tie_window();
  std::vector<Event> ties;
  ties.push_back(std::move(ev));
  while (!queue_.empty() && queue_.top().time <= window_end) {
    ties.push_back(queue_.top());
    queue_.pop();
  }
  std::size_t chosen = 0;
  if (ties.size() > 1) {
    std::vector<RunnableEvent> view;
    view.reserve(ties.size());
    for (const Event& e : ties) view.push_back(RunnableEvent{e.time, e.seq});
    chosen = sc->pick(view);
    COLCOM_ENSURE_MSG(chosen < ties.size(),
                      "controller pick out of range");
  }
  Event out = std::move(ties[chosen]);
  for (std::size_t i = 0; i < ties.size(); ++i) {
    if (i != chosen) queue_.push(std::move(ties[i]));
  }
  sc->on_dispatch(RunnableEvent{out.time, out.seq});
  return out;
}

Engine::Actor& Engine::self() {
  COLCOM_EXPECT_MSG(in_actor(), "call valid only inside an actor");
  COLCOM_ENSURE(current_actor_ >= 0);
  return *actors_[static_cast<std::size_t>(current_actor_)];
}

void Engine::resume_actor(int id) {
  Actor& a = *actors_[static_cast<std::size_t>(id)];
  if (a.fiber->finished()) return;
  note_access(actor_key(id));
  const int prev = std::exchange(current_actor_, id);
  a.fiber->resume();
  current_actor_ = prev;
  if (a.fiber->finished()) {
    for (TraceSink* s : sinks_) s->on_actor_finish(id, now_);
    if (a.fiber->exception()) {
      pending_exception_ = a.fiber->exception();
    }
  }
}

void Engine::advance(SimTime dt, CpuKind kind) {
  COLCOM_EXPECT(dt >= 0);
  Actor& a = self();
  const int id = current_actor_;
  const SimTime begin = now_;
  const SimTime end = now_ + dt;
  schedule(end, [this, id] { resume_actor(id); });
  a.fiber->yield();
  record(id, kind, begin, end);
}

void Engine::block() {
  Actor& a = self();
  const int id = current_actor_;
  a.blocked = true;
  a.blocked_since = now_;
  a.fiber->yield();
  COLCOM_ENSURE_MSG(!a.blocked, "woken actor must have been unblocked");
  record(id, CpuKind::wait, a.blocked_since, now_);
}

void Engine::sleep_until(SimTime t) {
  COLCOM_EXPECT(t >= now_);
  const int id = current_actor_;
  schedule(t, [this, id] { wake(id); });
  block();
}

void Engine::wake(int actor_id) {
  COLCOM_EXPECT(actor_id >= 0 &&
                actor_id < static_cast<int>(actors_.size()));
  Actor& a = *actors_[static_cast<std::size_t>(actor_id)];
  COLCOM_EXPECT_MSG(a.blocked, "wake() target must be blocked");
  note_access(actor_key(actor_id));
  a.blocked = false;
  schedule(now_, [this, actor_id] { resume_actor(actor_id); });
}

int Engine::current_actor() const {
  COLCOM_EXPECT_MSG(in_actor(), "no current actor in host context");
  return current_actor_;
}

int Engine::current_node() const {
  return actors_[static_cast<std::size_t>(current_actor())]->node;
}

const std::string& Engine::actor_name(int id) const {
  return actors_[static_cast<std::size_t>(id)]->name;
}

int Engine::node_of(int id) const {
  return actors_[static_cast<std::size_t>(id)]->node;
}

bool Engine::actor_finished(int id) const {
  return actors_[static_cast<std::size_t>(id)]->fiber->finished();
}

void Engine::record(int actor_id, CpuKind kind, SimTime begin, SimTime end) {
  if (sinks_.empty() || end <= begin) return;
  const int node = actors_[static_cast<std::size_t>(actor_id)]->node;
  for (TraceSink* s : sinks_) {
    s->on_interval(node, actor_id, kind, begin, end);
  }
}

}  // namespace colcom::des

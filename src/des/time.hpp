// Virtual time for the discrete-event simulator.
//
// All performance numbers this repository reports are *virtual seconds*
// accumulated by the DES cost models (network, storage, CPU), never host
// wall-clock. Double precision is ample: experiments span microseconds to a
// few hundred seconds, and event ordering ties are broken by sequence number,
// so FP rounding cannot change schedule order between runs.
#pragma once

namespace colcom::des {

/// Virtual seconds.
using SimTime = double;

/// What a fiber's CPU is doing during an interval — the classification behind
/// the paper's Figures 2/3 (user% / sys% / wait%).
enum class CpuKind {
  user,  ///< application computation (map functions, simulated analysis)
  sys,   ///< kernel-ish work: pack/unpack, memcpy, metadata handling
  wait,  ///< blocked on I/O or communication
};

}  // namespace colcom::des

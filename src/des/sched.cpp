#include "des/sched.hpp"

#include "util/assert.hpp"

namespace colcom::des {

namespace {
ScheduleController* g_controller = nullptr;

// FNV-1a over a tagged 64-bit id so actor and mailbox keys cannot collide.
std::uint64_t mix_key(std::uint64_t domain, std::uint64_t id) {
  std::uint64_t h = 1469598103934665603ull;
  const std::uint64_t kPrime = 1099511628211ull;
  for (std::uint64_t v : {domain, id}) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xffu)) * kPrime;
    }
  }
  return h;
}
}  // namespace

ScheduleController::~ScheduleController() {
  COLCOM_ENSURE_MSG(!installed_,
                    "ScheduleController destroyed while still installed");
}

ScheduleController* ScheduleController::current() { return g_controller; }

void ScheduleController::install() {
  COLCOM_EXPECT_MSG(!installed_, "controller already installed");
  prev_ = g_controller;
  g_controller = this;
  installed_ = true;
}

void ScheduleController::uninstall() {
  COLCOM_EXPECT_MSG(installed_ && g_controller == this,
                    "uninstall order must be LIFO");
  g_controller = prev_;
  prev_ = nullptr;
  installed_ = false;
}

std::uint64_t actor_key(int actor_id) {
  return mix_key(1, static_cast<std::uint64_t>(actor_id));
}

std::uint64_t mailbox_key(int rank) {
  return mix_key(2, static_cast<std::uint64_t>(rank));
}

void note_access(std::uint64_t key) {
  if (g_controller != nullptr) g_controller->on_access(key);
}

}  // namespace colcom::des

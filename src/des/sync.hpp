// Fiber-blocking synchronisation primitives: Semaphore, bounded Channel,
// FiberBarrier. These are the coordination vocabulary of the collective-
// computing runtime (Fig. 7 of the paper: I/O thread and shuffle thread
// connected by a bounded queue).
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "des/engine.hpp"
#include "util/assert.hpp"

namespace colcom::des {

/// Counting semaphore for fibers.
class Semaphore {
 public:
  Semaphore(Engine& engine, int initial) : engine_(&engine), count_(initial) {
    COLCOM_EXPECT(initial >= 0);
  }

  void acquire() {
    while (count_ == 0) {
      waiters_.push_back(engine_->current_actor());
      engine_->block();
    }
    --count_;
  }

  void release() {
    ++count_;
    wake_one();
  }

  int available() const { return count_; }

 private:
  void wake_one() {
    if (!waiters_.empty()) {
      const int id = waiters_.front();
      waiters_.pop_front();
      engine_->wake(id);
    }
  }

  Engine* engine_;
  int count_;
  std::deque<int> waiters_;
};

/// Bounded single-producer/consumer-friendly FIFO channel. push() blocks when
/// full, pop() blocks when empty. close() makes pop() return nullopt once
/// drained — the conventional end-of-stream signal between pipeline stages.
template <typename T>
class Channel {
 public:
  Channel(Engine& engine, std::size_t capacity)
      : engine_(&engine), capacity_(capacity) {
    COLCOM_EXPECT(capacity >= 1);
  }

  void push(T value) {
    COLCOM_EXPECT_MSG(!closed_, "push() on a closed channel");
    while (items_.size() >= capacity_) {
      push_waiters_.push_back(engine_->current_actor());
      engine_->block();
      COLCOM_EXPECT_MSG(!closed_, "channel closed while push was blocked");
    }
    items_.push_back(std::move(value));
    wake_all(pop_waiters_);
  }

  /// Blocks until an item is available or the channel is closed and empty.
  std::optional<T> pop() {
    while (items_.empty() && !closed_) {
      pop_waiters_.push_back(engine_->current_actor());
      engine_->block();
    }
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    wake_all(push_waiters_);
    return v;
  }

  void close() {
    closed_ = true;
    wake_all(pop_waiters_);
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return items_.size(); }

 private:
  void wake_all(std::deque<int>& waiters) {
    while (!waiters.empty()) {
      const int id = waiters.front();
      waiters.pop_front();
      engine_->wake(id);
    }
  }

  Engine* engine_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<int> push_waiters_;
  std::deque<int> pop_waiters_;
  bool closed_ = false;
};

/// Reusable barrier for a fixed party count (cyclic, like MPI_Barrier reused
/// across iterations).
class FiberBarrier {
 public:
  FiberBarrier(Engine& engine, int parties)
      : engine_(&engine), parties_(parties) {
    COLCOM_EXPECT(parties >= 1);
  }

  void arrive_and_wait() {
    const std::uint64_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      std::vector<int> waiters;
      waiters.swap(waiters_);
      for (int id : waiters) engine_->wake(id);
      return;
    }
    while (generation_ == my_generation) {
      waiters_.push_back(engine_->current_actor());
      engine_->block();
    }
  }

 private:
  Engine* engine_;
  int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<int> waiters_;
};

}  // namespace colcom::des

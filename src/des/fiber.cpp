#include "des/fiber.hpp"

#include "util/assert.hpp"

// AddressSanitizer must be told about stack switches: its instrumentation
// poisons stack frames on scope exit, and exception unwinding only unpoisons
// the stack it believes is current. Without these annotations, a throw that
// unwinds frames on a fiber stack leaves stale scope poison behind, and the
// next run through the same stack depth reports a bogus stack-use-after-scope.
// The hooks compile to nothing when ASan is off.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define COLCOM_ASAN_FIBERS 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define COLCOM_ASAN_FIBERS 1
#endif

#if defined(COLCOM_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace colcom::des {

namespace {

#if defined(COLCOM_ASAN_FIBERS)
inline void asan_start_switch(void** save, const void* bottom,
                              std::size_t size) {
  __sanitizer_start_switch_fiber(save, bottom, size);
}
inline void asan_finish_switch(void* save, const void** bottom,
                               std::size_t* size) {
  __sanitizer_finish_switch_fiber(save, bottom, size);
}
#else
inline void asan_start_switch(void**, const void*, std::size_t) {}
inline void asan_finish_switch(void*, const void**, std::size_t*) {}
#endif

}  // namespace

Fiber* Fiber::current_ = nullptr;

// makecontext() can only pass int arguments portably, so the target fiber is
// handed to the trampoline through this static slot. The engine is
// single-threaded, which makes this safe: the slot is written immediately
// before the one swapcontext() that consumes it.
namespace {
Fiber* g_trampoline_target = nullptr;
}

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> body)
    : stack_(std::make_unique<std::byte[]>(stack_bytes)),
      stack_bytes_(stack_bytes),
      body_(std::move(body)) {
  COLCOM_EXPECT(stack_bytes >= 16 * 1024);
  COLCOM_EXPECT(body_ != nullptr);
}

Fiber::~Fiber() = default;

void Fiber::trampoline() {
  Fiber* self = g_trampoline_target;
  // First time on this stack: complete the switch resume() started and learn
  // the scheduler's stack bounds (finish reports the stack we came from).
  asan_finish_switch(nullptr, &self->sched_stack_bottom_,
                     &self->sched_stack_size_);
  try {
    self->body_();
  } catch (...) {
    self->exception_ = std::current_exception();
  }
  self->finished_ = true;
  // Fall back to the scheduler; uc_link returns there, but swap explicitly so
  // `current_` is maintained. save=nullptr: this fiber's fake stack can be
  // destroyed, the context never runs again.
  current_ = nullptr;
  asan_start_switch(nullptr, self->sched_stack_bottom_,
                    self->sched_stack_size_);
  swapcontext(&self->ctx_, &self->return_ctx_);
}

void Fiber::resume() {
  COLCOM_EXPECT_MSG(current_ == nullptr,
                    "resume() must be called from the scheduler context");
  COLCOM_EXPECT_MSG(!finished_, "cannot resume a finished fiber");
  if (!started_) {
    started_ = true;
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &return_ctx_;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
    g_trampoline_target = this;
  }
  current_ = this;
  void* fake = nullptr;
  asan_start_switch(&fake, stack_.get(), stack_bytes_);
  swapcontext(&return_ctx_, &ctx_);
  asan_finish_switch(fake, nullptr, nullptr);
  current_ = nullptr;
}

void Fiber::yield() {
  COLCOM_EXPECT_MSG(current_ == this, "yield() must be called from the fiber");
  current_ = nullptr;
  void* fake = nullptr;
  asan_start_switch(&fake, sched_stack_bottom_, sched_stack_size_);
  swapcontext(&ctx_, &return_ctx_);
  asan_finish_switch(fake, nullptr, nullptr);
  current_ = this;
}

}  // namespace colcom::des

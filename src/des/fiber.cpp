#include "des/fiber.hpp"

#include "util/assert.hpp"

namespace colcom::des {

Fiber* Fiber::current_ = nullptr;

// makecontext() can only pass int arguments portably, so the target fiber is
// handed to the trampoline through this static slot. The engine is
// single-threaded, which makes this safe: the slot is written immediately
// before the one swapcontext() that consumes it.
namespace {
Fiber* g_trampoline_target = nullptr;
}

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> body)
    : stack_(std::make_unique<std::byte[]>(stack_bytes)),
      stack_bytes_(stack_bytes),
      body_(std::move(body)) {
  COLCOM_EXPECT(stack_bytes >= 16 * 1024);
  COLCOM_EXPECT(body_ != nullptr);
}

Fiber::~Fiber() = default;

void Fiber::trampoline() {
  Fiber* self = g_trampoline_target;
  try {
    self->body_();
  } catch (...) {
    self->exception_ = std::current_exception();
  }
  self->finished_ = true;
  // Fall back to the scheduler; uc_link returns there, but swap explicitly so
  // `current_` is maintained.
  current_ = nullptr;
  swapcontext(&self->ctx_, &self->return_ctx_);
}

void Fiber::resume() {
  COLCOM_EXPECT_MSG(current_ == nullptr,
                    "resume() must be called from the scheduler context");
  COLCOM_EXPECT_MSG(!finished_, "cannot resume a finished fiber");
  if (!started_) {
    started_ = true;
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &return_ctx_;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
    g_trampoline_target = this;
  }
  current_ = this;
  swapcontext(&return_ctx_, &ctx_);
  current_ = nullptr;
}

void Fiber::yield() {
  COLCOM_EXPECT_MSG(current_ == this, "yield() must be called from the fiber");
  current_ = nullptr;
  swapcontext(&ctx_, &return_ctx_);
  current_ = this;
}

}  // namespace colcom::des

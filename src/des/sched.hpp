// Schedule-controller seam: the engine's one source of nondeterminism made
// explicit and steerable.
//
// The DES is deterministic — events fire in (time, insertion-sequence) order —
// but the *insertion sequence* is an artifact of construction order, not a
// semantic constraint. Whenever several events are runnable at (effectively)
// the same virtual time, any of them could legitimately fire first: a message
// arrival vs. a crash-detection timer, two same-timestamp sends racing into a
// wildcard receive, two fibers unblocked in the same instant. A
// ScheduleController intercepts exactly these ties and chooses which event
// dispatches next, which is the hook `check::Explorer` uses to enumerate
// schedules (CHESS/DPOR-style stateless model checking).
//
// Controllers install globally (stacked, like check::Checker) so the engine
// does not need to be threaded through every call site. With no controller
// installed the engine behaves exactly as before: strict (time, seq) order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/time.hpp"

namespace colcom::des {

/// One runnable event offered to the controller at a choice point. `seq` is
/// the engine's insertion sequence number — stable across re-executions of a
/// deterministic world, which is what makes recorded choices replayable.
struct RunnableEvent {
  SimTime time = 0;
  std::uint64_t seq = 0;
};

class ScheduleController {
 public:
  virtual ~ScheduleController();

  /// Called when >= 2 events are runnable within the tie window. Returns the
  /// index into `ties` of the event to dispatch next; the rest are re-queued.
  /// `ties` is ordered by (time, seq), so index 0 is the default choice.
  virtual std::size_t pick(const std::vector<RunnableEvent>& ties) = 0;

  /// Called for every dispatched event, tie or not, just before its callback
  /// runs. Lets the controller keep a per-execution step counter and attach
  /// shared-state accesses (on_access) to the right event.
  virtual void on_dispatch(const RunnableEvent& ev) { (void)ev; }

  /// Reports that the currently dispatching event touched the shared state
  /// identified by `key` (see actor_key / mailbox_key). DPOR uses these
  /// footprints to decide which pairs of tied events actually commute.
  virtual void on_access(std::uint64_t key) { (void)key; }

  /// Events with time in [t_min, t_min + tie_window()] are treated as
  /// simultaneous for pick(). 0 means exact-timestamp ties only; a small
  /// positive window additionally exposes timer-vs-message races whose
  /// timestamps differ by less than the window.
  virtual SimTime tie_window() const { return 0; }

  /// Innermost installed controller, or nullptr.
  static ScheduleController* current();

  /// Stacked global installation (LIFO, like check::Checker).
  void install();
  void uninstall();

 protected:
  ScheduleController() = default;

 private:
  ScheduleController* prev_ = nullptr;
  bool installed_ = false;
};

/// Footprint key for "resumes actor `id`" (fiber-local state).
std::uint64_t actor_key(int actor_id);

/// Footprint key for "touches rank `rank`'s mailbox" (posted-receive and
/// unexpected-message queues — where wildcard-receive matching races live).
std::uint64_t mailbox_key(int rank);

/// Convenience: forwards to the installed controller's on_access; no-op when
/// none is installed. Call sites in des/mpi stay unconditional.
void note_access(std::uint64_t key);

}  // namespace colcom::des

// TraceSink: the engine's observability seam.
//
// Generalizes the old CpuListener (which only saw CPU intervals) into the
// interface every engine-level observer implements: CPU accounting intervals
// plus actor lifecycle. Higher-level structured tracing (spans, counters,
// flows — see src/trace/) consumes this seam for fiber run/block intervals
// and adds its own layer-level events on top.
//
// Sinks observe; they never schedule events or touch actor state, so an
// attached sink cannot perturb virtual time. With no sinks attached the
// engine's only cost is one empty-vector check per recorded interval.
#pragma once

#include <string>
#include <vector>

#include "des/time.hpp"

namespace colcom::des {

class Engine;

class TraceSink {
 public:
  /// Deregisters from any engine still holding this sink, so sink and
  /// engine may be destroyed in either order.
  virtual ~TraceSink();

  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Every CPU interval an actor spends (user/sys compute or blocked wait).
  /// `begin < end` is guaranteed; intervals of one actor never overlap.
  virtual void on_interval(int node, int actor, CpuKind kind, SimTime begin,
                           SimTime end) = 0;

  /// A new actor fiber was created (before its first dispatch).
  virtual void on_actor_spawn(int /*actor*/, int /*node*/,
                              const std::string& /*name*/, SimTime /*t*/) {}

  /// The actor's body returned.
  virtual void on_actor_finish(int /*actor*/, SimTime /*t*/) {}

  /// The engine this sink is attached to is being destroyed. Sinks that
  /// outlive the engine (a tracer spanning several runtimes) must drop any
  /// pointer to it here. The registration itself is already cleaned up.
  virtual void on_engine_destroyed() {}

 private:
  friend class Engine;
  std::vector<Engine*> engines_;  ///< engines currently holding this sink
};

/// Historical name: the profiler behind Figs. 2/3 was the first consumer of
/// this seam, when it carried only CPU intervals.
using CpuListener = TraceSink;

}  // namespace colcom::des

// The discrete-event engine: virtual clock, event queue, actor scheduling and
// CPU-time accounting.
//
// Actors (simulated MPI ranks, aggregator I/O threads, ...) are fibers; they
// interact with virtual time only through Engine::advance() (consume CPU) and
// Engine::block()/wake() (sleep until an event completes). The engine is
// deterministic: events fire in (time, insertion-sequence) order and there is
// no other source of ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "des/fiber.hpp"
#include "des/time.hpp"
#include "des/trace_sink.hpp"

namespace colcom::des {

/// Identifies a spawned actor; also usable to wait for its completion.
struct ActorHandle {
  int id = -1;
};

class Engine {
 public:
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Creates an actor bound to a (simulated) node. The body starts running
  /// when run() dispatches it. `stack_bytes` bounds the fiber stack.
  ActorHandle spawn(std::string name, int node, std::function<void()> body,
                    std::size_t stack_bytes = 256 * 1024);

  /// Schedules a plain callback at absolute virtual time `t` (>= now()).
  void schedule(SimTime t, std::function<void()> fn);

  /// Runs until the event queue drains. Rethrows the first actor exception.
  void run();

  /// Invoked when run() drains the event queue while some actors are still
  /// blocked — a stall: nothing can ever wake them (today's silent hang).
  /// Receives the blocked actor ids. Exceptions from the handler propagate
  /// out of run(). Not called when run() exits by rethrowing an actor
  /// exception.
  void set_stall_handler(std::function<void(const std::vector<int>&)> h) {
    stall_handler_ = std::move(h);
  }

  /// Virtual time at which a (currently blocked) actor blocked.
  SimTime actor_blocked_since(int id) const {
    return actors_[static_cast<std::size_t>(id)]->blocked_since;
  }

  // --- Calls valid only from inside an actor fiber ---

  /// Consumes `dt` of CPU, accounted as `kind`; other actors run meanwhile.
  void advance(SimTime dt, CpuKind kind = CpuKind::user);

  /// Blocks the calling actor until some other party calls wake() on it.
  /// Time spent blocked is accounted as CpuKind::wait.
  void block();

  /// Blocks until absolute virtual time `t` (accounted as wait).
  void sleep_until(SimTime t);

  /// Blocks for `dt` of virtual time (accounted as wait).
  void sleep_for(SimTime dt) { sleep_until(now_ + dt); }

  /// Wakes a blocked actor (schedules its resumption at now()). Waking an
  /// actor that is not blocked is a contract violation.
  void wake(int actor_id);

  /// Id/node/name of the actor currently executing.
  int current_actor() const;
  int current_node() const;
  const std::string& actor_name(int id) const;
  int node_of(int id) const;
  bool actor_finished(int id) const;

  /// True when called from inside an actor fiber.
  bool in_actor() const { return Fiber::current() != nullptr; }

  /// Attaches an observer for CPU intervals and actor lifecycle. Multiple
  /// sinks may be attached (profiler + tracer); attach order is notify order.
  void add_trace_sink(TraceSink* sink);
  void remove_trace_sink(TraceSink* sink);

  /// Legacy single-listener setter: replaces the sink installed by the
  /// previous set_cpu_listener call (nullptr just clears it). Sinks attached
  /// via add_trace_sink are unaffected.
  void set_cpu_listener(CpuListener* listener);

  /// Number of events dispatched so far (for tests / sanity checks).
  std::uint64_t events_dispatched() const { return events_dispatched_; }

 private:
  struct Actor {
    std::string name;
    int node = 0;
    std::unique_ptr<Fiber> fiber;
    bool blocked = false;
    SimTime blocked_since = 0;
  };

  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Actor& self();
  Event pop_next_event();
  void resume_actor(int id);
  void record(int actor_id, CpuKind kind, SimTime begin, SimTime end);

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<Fiber*> fiber_of_actor_;  // index: actor id
  int current_actor_ = -1;
  std::vector<TraceSink*> sinks_;
  TraceSink* legacy_listener_ = nullptr;
  std::exception_ptr pending_exception_;
  std::function<void(const std::vector<int>&)> stall_handler_;
};

}  // namespace colcom::des

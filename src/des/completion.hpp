// Completion: a one-shot future in virtual time.
//
// Producers either know the completion time up front (FIFO resources) and use
// Completion::at(), or fire manually through a CompletionSource. Actors wait
// with Completion::wait(); multiple waiters are allowed.
#pragma once

#include <memory>
#include <vector>

#include "des/engine.hpp"
#include "des/time.hpp"
#include "util/assert.hpp"

namespace colcom::des {

class CompletionSource;

class Completion {
 public:
  /// Default-constructed completions are invalid; wait() on them is an error.
  Completion() = default;

  /// A completion that fires at absolute virtual time `t`.
  static Completion at(Engine& engine, SimTime t) {
    Completion c;
    c.state_ = std::make_shared<State>();
    c.state_->engine = &engine;
    engine.schedule(t, [st = c.state_] { fire(*st); });
    return c;
  }

  /// A completion that is already done (zero-cost operations).
  static Completion ready(Engine& engine) {
    Completion c;
    c.state_ = std::make_shared<State>();
    c.state_->engine = &engine;
    c.state_->done = true;
    c.state_->ready_at = engine.now();
    return c;
  }

  bool valid() const { return state_ != nullptr; }
  bool done() const { return valid() && state_->done; }

  /// Time the completion fired (valid once done()).
  SimTime ready_at() const {
    COLCOM_EXPECT(done());
    return state_->ready_at;
  }

  /// Blocks the calling actor until done. No-op if already done.
  void wait() const {
    COLCOM_EXPECT_MSG(valid(), "wait() on an invalid Completion");
    Engine& e = *state_->engine;
    while (!state_->done) {
      state_->waiters.push_back(e.current_actor());
      e.block();
    }
  }

  /// Runs `fn` when the completion fires (immediately if already done).
  /// Callbacks run in the engine's event context — they must not block.
  void on_done(std::function<void()> fn) const {
    COLCOM_EXPECT_MSG(valid(), "on_done() on an invalid Completion");
    if (state_->done) {
      state_->engine->schedule(state_->engine->now(), std::move(fn));
    } else {
      state_->callbacks.push_back(std::move(fn));
    }
  }

 private:
  friend class CompletionSource;

  struct State {
    Engine* engine = nullptr;
    bool done = false;
    SimTime ready_at = 0;
    std::vector<int> waiters;
    std::vector<std::function<void()>> callbacks;
  };

  static void fire(State& st) {
    st.done = true;
    st.ready_at = st.engine->now();
    std::vector<int> waiters;
    waiters.swap(st.waiters);
    for (int id : waiters) st.engine->wake(id);
    std::vector<std::function<void()>> callbacks;
    callbacks.swap(st.callbacks);
    for (auto& fn : callbacks) fn();
  }

  std::shared_ptr<State> state_;
};

/// Manually-fired completion (e.g. "message matched and delivered").
class CompletionSource {
 public:
  explicit CompletionSource(Engine& engine)
      : state_(std::make_shared<Completion::State>()) {
    state_->engine = &engine;
  }

  Completion completion() const {
    Completion c;
    c.state_ = state_;
    return c;
  }

  /// Fires at the current virtual time. Firing twice is a contract error.
  void fire() {
    COLCOM_EXPECT_MSG(!state_->done, "CompletionSource fired twice");
    Completion::fire(*state_);
  }

  bool fired() const { return state_->done; }

 private:
  std::shared_ptr<Completion::State> state_;
};

/// Waits for every completion in the span (order-insensitive).
inline void wait_all(const std::vector<Completion>& cs) {
  for (const auto& c : cs) c.wait();
}

}  // namespace colcom::des

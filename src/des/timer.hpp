// Timer: a cancellable one-shot timeout over Engine::schedule().
//
// The engine's event queue has no removal, so cancellation is a tombstone:
// arming hands the scheduled event a shared flag, and cancel() (or a
// re-arm) clears it before the event fires. This is the timeout primitive
// behind the MPI retransmit protocol (arm an ack deadline, cancel on ack).
#pragma once

#include <functional>
#include <memory>

#include "des/engine.hpp"
#include "des/time.hpp"

namespace colcom::des {

class Timer {
 public:
  explicit Timer(Engine& engine) : engine_(&engine) {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms the timer to run `fn` (in event context — it must not block) at
  /// absolute virtual time `at`. Re-arming cancels any pending fire.
  void arm(SimTime at, std::function<void()> fn) {
    cancel();
    auto live = std::make_shared<bool>(true);
    token_ = live;
    engine_->schedule(at, [live = std::move(live), fn = std::move(fn)] {
      if (*live) fn();
    });
  }

  /// Disarms a pending fire; no-op when not armed.
  void cancel() {
    if (auto live = token_.lock()) *live = false;
    token_.reset();
  }

  /// True while a fire is pending (false after firing or cancel()).
  bool armed() const { return !token_.expired(); }

  Engine& engine() const { return *engine_; }

 private:
  Engine* engine_;
  std::weak_ptr<bool> token_;
};

}  // namespace colcom::des

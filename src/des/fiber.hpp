// Cooperative user-level fibers (ucontext-based) for DES actors.
//
// The engine is strictly single-threaded: exactly one fiber (or the main
// scheduler context) runs at any instant, and control transfers only at
// explicit resume/yield points. That makes every data structure in the
// simulation race-free by construction (CP.2) without any locking.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>

namespace colcom::des {

/// A single cooperative fiber. Not copyable/movable: the ucontext captures
/// the object address.
class Fiber {
 public:
  /// `body` runs on the fiber's own stack when resume() is first called.
  Fiber(std::size_t stack_bytes, std::function<void()> body);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfers control from the scheduler into the fiber; returns when the
  /// fiber yields or finishes. Must not be called from inside a fiber.
  void resume();

  /// Transfers control back to the scheduler. Must be called from inside
  /// this fiber.
  void yield();

  bool finished() const { return finished_; }

  /// If the body exited with an exception, it is captured here.
  std::exception_ptr exception() const { return exception_; }

  /// Fiber currently executing, or nullptr when in the scheduler context.
  static Fiber* current() { return current_; }

 private:
  static void trampoline();

  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  std::unique_ptr<std::byte[]> stack_;
  std::size_t stack_bytes_;
  std::function<void()> body_;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr exception_;
  // Scheduler-context stack bounds as reported by ASan at first entry —
  // handed back to __sanitizer_start_switch_fiber when yielding, so ASan
  // tracks which stack is live across swapcontext (unused without ASan).
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;

  static Fiber* current_;
};

}  // namespace colcom::des

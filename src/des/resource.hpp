// FifoResource: a non-preemptive single server in virtual time.
//
// Models one OST disk head, one shared storage-network pipe, one CPU core —
// anything whose service discipline is "first come, first served, one at a
// time". Because the completion time of a FIFO server is known the moment a
// request is enqueued, use_async() can return a Completion immediately.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "des/completion.hpp"
#include "des/engine.hpp"
#include "des/time.hpp"
#include "util/assert.hpp"

namespace colcom::des {

class FifoResource {
 public:
  FifoResource(Engine& engine, std::string name)
      : engine_(&engine), name_(std::move(name)) {}

  /// Enqueues a request needing `service` seconds; returns a completion that
  /// fires when the server finishes it.
  Completion use_async(SimTime service) {
    COLCOM_EXPECT(service >= 0);
    const SimTime start = std::max(engine_->now(), next_free_);
    const SimTime done = start + service;
    next_free_ = done;
    busy_ += service;
    ++ops_;
    return Completion::at(*engine_, done);
  }

  /// Blocking form: the calling actor waits for its own request.
  void use(SimTime service) { use_async(service).wait(); }

  /// Enqueues a request and returns only its completion *time* — no
  /// Completion object is allocated. Composite devices (the PFS) use this to
  /// fold several servers' finish times into a single completion.
  SimTime enqueue(SimTime service) {
    COLCOM_EXPECT(service >= 0);
    const SimTime start = std::max(engine_->now(), next_free_);
    const SimTime done = start + service;
    next_free_ = done;
    busy_ += service;
    ++ops_;
    return done;
  }

  /// When the server drains its current queue (>= now() means busy).
  SimTime next_free() const { return next_free_; }

  /// Total service time delivered (for utilization reports).
  SimTime busy_time() const { return busy_; }
  std::uint64_t ops() const { return ops_; }
  const std::string& name() const { return name_; }

 private:
  Engine* engine_;
  std::string name_;
  SimTime next_free_ = 0;
  SimTime busy_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace colcom::des

// Two-phase collective read/write (ROMIO's ADIOI_GEN_ReadStridedColl /
// WriteStridedColl, reimplemented over the simulated machine).
//
// Read: aggregators stream their file domain in cb-sized chunks (I/O
// phase) and redistribute each chunk's bytes to the requesting ranks
// (shuffle phase). With hints.pipelined the read of chunk k+1 overlaps the
// shuffle of chunk k — the nonblocking two-phase the paper profiles in
// Fig. 1 and contrasts with collective computing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpi/comm.hpp"
#include "pfs/pfs.hpp"
#include "romio/plan.hpp"
#include "romio/request.hpp"

namespace colcom::fault {
class Injector;
}

namespace colcom::romio {

/// Aggregator-side timing of one two-phase iteration.
struct IterStat {
  double read_s = 0;     ///< PFS service time of this chunk
  double stall_s = 0;    ///< time the aggregator actually waited on the read
  double shuffle_s = 0;  ///< time to deliver all shuffle messages
  std::uint64_t read_bytes = 0;
  std::uint64_t shuffle_bytes = 0;
};

/// Per-rank result of a collective operation.
struct CollectiveStats {
  double plan_s = 0;   ///< access-info exchange and planning
  double total_s = 0;  ///< whole collective call on this rank
  std::uint64_t bytes_moved = 0;  ///< user payload into (read) / out of (write) this rank
  /// Extents recovered through independent I/O after the collective path
  /// surfaced fault::Error (read: ChunkReader re-reads; write: write_all
  /// re-writes stripe by stripe).
  std::uint64_t io_fallbacks = 0;
  std::vector<IterStat> iters;    ///< non-empty on aggregators only
};

/// One in-flight aggregation-chunk read: the union of requested ranges in
/// the chunk window (holes skipped per Hints::sieve_gap), landing in a
/// window-addressed buffer (byte at file offset o sits at buf[o - chunk.
/// offset]). Both the plain two-phase read and the collective-computing
/// runtime drive their I/O phase through this.
class ChunkReader {
 public:
  /// Issues the async reads for `chunk` over the union of
  /// `domain_requests` (any rank-indexed request set — the plan's own
  /// domain, or an absorbed dead-aggregator domain); `buf` must outlive
  /// wait(). When an extent exhausts its PFS retry budget (fault::Error)
  /// the reader degrades to a bounded independent re-read of that extent
  /// instead of aborting the collective; `chaos`, when non-null, records
  /// the fallback.
  void issue(pfs::Pfs& fs, pfs::FileId file,
             const std::vector<FlatRequest>& domain_requests,
             pfs::ByteExtent chunk, std::vector<std::byte>& buf,
             std::uint64_t sieve_gap, double now,
             fault::Injector* chaos = nullptr);

  /// Blocks until every extent of the chunk arrived.
  void wait();

  pfs::ByteExtent chunk() const { return chunk_; }
  std::uint64_t bytes_read() const { return bytes_; }
  /// The extents actually read (post hole-skipping) — used by chunk
  /// verification to checksum and re-read.
  const std::vector<pfs::ByteExtent>& extents() const { return extents_; }
  /// PFS service time of this chunk (valid after wait()).
  double service_time() const;
  bool issued() const { return issued_; }
  /// Extents recovered through the independent-read fallback, accumulated
  /// across every issue() on this reader.
  std::uint64_t fallbacks() const { return fallbacks_; }

 private:
  pfs::ByteExtent chunk_{0, 0};
  std::vector<pfs::ByteExtent> extents_;
  std::vector<des::Completion> pending_;
  std::uint64_t bytes_ = 0;
  std::uint64_t fallbacks_ = 0;
  double issued_at_ = 0;
  double done_at_ = 0;
  bool issued_ = false;
};

class CollectiveIo {
 public:
  explicit CollectiveIo(Hints hints = {}) : hints_(hints) {}

  /// Collective read: all ranks must call. `mine` describes this rank's file
  /// extents; bytes land packed-in-extent-order in `dst`.
  CollectiveStats read_all(mpi::Comm& comm, pfs::FileId file,
                           const FlatRequest& mine, std::span<std::byte> dst);

  /// Collective write: `src` holds this rank's bytes packed in extent order.
  CollectiveStats write_all(mpi::Comm& comm, pfs::FileId file,
                            const FlatRequest& mine,
                            std::span<const std::byte> src);

  const Hints& hints() const { return hints_; }

 private:
  /// Receiver side of one iteration: pull this rank's pieces of every
  /// aggregator's chunk `k` and scatter them into `dst`.
  void receive_for_iteration(mpi::Comm& comm, const TwoPhasePlan& plan,
                             const FlatRequest& mine, std::span<std::byte> dst,
                             int k, std::vector<std::byte>& staging,
                             CollectiveStats& stats);

  static IterStat& ensure_iter(CollectiveStats& stats, int n_iters, int k);

  Hints hints_;
};

}  // namespace colcom::romio

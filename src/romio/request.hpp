// FlatRequest: a rank's file access as a sorted extent list — ROMIO's
// flattened representation — plus the mapping back into the rank's
// contiguous user buffer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpi/datatype.hpp"
#include "pfs/extent.hpp"

namespace colcom::romio {

/// One intersected piece of a request: `len` bytes at file offset
/// `file_off`, landing at `buf_off` in the requesting rank's user buffer.
struct Piece {
  std::uint64_t file_off = 0;
  std::uint64_t len = 0;
  std::uint64_t buf_off = 0;
  friend bool operator==(const Piece&, const Piece&) = default;
};

class FlatRequest {
 public:
  FlatRequest() = default;

  /// From sorted, non-overlapping extents (user-buffer order == extent
  /// order, as produced by datatype flattening).
  explicit FlatRequest(std::vector<pfs::ByteExtent> extents);

  /// From a datatype's typemap anchored at `file_base` (e.g. a variable's
  /// start offset in the file).
  static FlatRequest from_datatype(std::uint64_t file_base,
                                   const mpi::Datatype& type,
                                   std::uint64_t count = 1);

  const std::vector<pfs::ByteExtent>& extents() const { return extents_; }
  std::uint64_t total_bytes() const { return total_; }
  bool empty() const { return extents_.empty(); }

  /// Smallest/largest file offset touched (contract error when empty).
  std::uint64_t min_offset() const;
  std::uint64_t max_offset() const;  ///< one past the last byte

  /// Pieces of this request inside file range [lo, hi), in file order.
  std::vector<Piece> intersect(std::uint64_t lo, std::uint64_t hi) const;

  /// Bytes of this request inside [lo, hi).
  std::uint64_t bytes_in(std::uint64_t lo, std::uint64_t hi) const;

  /// Wire form: [n][off,len]... for exchanging access info with aggregators.
  std::vector<std::byte> serialize() const;
  static FlatRequest deserialize(std::span<const std::byte> wire);

  /// The same request translated by `delta` bytes (delta may be negative
  /// but must not move any extent before offset 0).
  FlatRequest shifted(std::int64_t delta) const;

 private:
  std::vector<pfs::ByteExtent> extents_;
  std::vector<std::uint64_t> buf_displ_;  // user-buffer offset per extent
  std::uint64_t total_ = 0;
};

}  // namespace colcom::romio

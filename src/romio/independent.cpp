#include "romio/independent.hpp"

#include "mpi/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/assert.hpp"

namespace colcom::romio {

IndependentStats read_indep(mpi::Comm& comm, pfs::FileId file,
                            const FlatRequest& mine, std::span<std::byte> dst,
                            const SievingConfig& sieving) {
  COLCOM_EXPECT(dst.size() >= mine.total_bytes());
  IndependentStats stats;
  const double t0 = comm.wtime();
  auto& fs = comm.runtime().fs();
  const auto before = fs.stats().requests;

  if (mine.empty()) {
    stats.total_s = comm.wtime() - t0;
    return stats;
  }

  if (!sieving.enabled) {
    fs.read_extents_async(file, mine.extents(), dst.subspan(0, mine.total_bytes()))
        .wait();
    stats.bytes_accessed = mine.total_bytes();
  } else {
    // Slide a sieve window over [min, max); read whole windows that are
    // dense enough, extract the useful bytes.
    std::vector<std::byte> window(sieving.buffer_size);
    std::uint64_t lo = mine.min_offset();
    const std::uint64_t end = mine.max_offset();
    while (lo < end) {
      const std::uint64_t hi = std::min(end, lo + sieving.buffer_size);
      const auto pieces = mine.intersect(lo, hi);
      if (!pieces.empty()) {
        std::uint64_t useful = 0;
        for (const auto& p : pieces) useful += p.len;
        const double frac =
            static_cast<double>(useful) / static_cast<double>(hi - lo);
        if (frac >= sieving.min_useful_fraction) {
          window.resize(hi - lo);
          fs.read(file, lo, window);
          stats.bytes_accessed += hi - lo;
          for (const auto& p : pieces) {
            std::memcpy(dst.data() + p.buf_off,
                        window.data() + (p.file_off - lo), p.len);
          }
          const double memcpy_bw = comm.runtime().config().memcpy_bw;
          comm.overhead(static_cast<double>(useful) / memcpy_bw);
        } else {
          std::vector<pfs::ByteExtent> ext;
          std::uint64_t piece_bytes = 0;
          for (const auto& p : pieces) {
            ext.push_back(pfs::ByteExtent{p.file_off, p.len});
            piece_bytes += p.len;
          }
          std::vector<std::byte> tmp(piece_bytes);
          fs.read_extents_async(file, ext, tmp).wait();
          stats.bytes_accessed += piece_bytes;
          std::uint64_t pos = 0;
          for (const auto& p : pieces) {
            std::memcpy(dst.data() + p.buf_off, tmp.data() + pos, p.len);
            pos += p.len;
          }
        }
      }
      lo = hi;
    }
  }
  stats.bytes_moved = mine.total_bytes();
  stats.pfs_requests = fs.stats().requests - before;
  stats.total_s = comm.wtime() - t0;
  return stats;
}

IndependentStats write_indep(mpi::Comm& comm, pfs::FileId file,
                             const FlatRequest& mine,
                             std::span<const std::byte> src) {
  COLCOM_EXPECT(src.size() >= mine.total_bytes());
  IndependentStats stats;
  const double t0 = comm.wtime();
  auto& fs = comm.runtime().fs();
  const auto before = fs.stats().requests;
  std::uint64_t pos = 0;
  std::vector<des::Completion> pending;
  for (const auto& e : mine.extents()) {
    pending.push_back(fs.write_async(file, e.offset, src.subspan(pos, e.length)));
    pos += e.length;
  }
  des::wait_all(pending);
  stats.bytes_moved = mine.total_bytes();
  stats.bytes_accessed = mine.total_bytes();
  stats.pfs_requests = fs.stats().requests - before;
  stats.total_s = comm.wtime() - t0;
  return stats;
}

}  // namespace colcom::romio

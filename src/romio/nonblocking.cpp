#include "romio/nonblocking.hpp"

#include "util/assert.hpp"

namespace colcom::romio {

NbRequest nb_read_all(mpi::Comm& comm, pfs::FileId file,
                      const FlatRequest& mine, std::span<std::byte> dst,
                      const Hints& hints, int context) {
  COLCOM_EXPECT_MSG(context >= 1,
                    "nonblocking collectives need a context id >= 1 so they "
                    "cannot cross-match the blocking context 0");
  NbRequest req;
  req.state_ = std::make_shared<NbRequest::State>();
  Hints h = hints;
  h.context = context;
  auto st = req.state_;
  req.state_->done = comm.spawn_thread(
      "nbcio-rank" + std::to_string(comm.rank()),
      [&comm, file, mine, dst, h, st] {
        CollectiveIo cio(h);
        st->stats = cio.read_all(comm, file, mine, dst);
      });
  return req;
}

}  // namespace colcom::romio

// Independent (non-collective) I/O, with optional data sieving — the
// baselines collective I/O is measured against (paper Figs. 2/3).
#pragma once

#include <cstdint>
#include <span>

#include "mpi/comm.hpp"
#include "pfs/pfs.hpp"
#include "romio/request.hpp"

namespace colcom::romio {

struct SievingConfig {
  bool enabled = false;
  /// Sieve window read at once (ROMIO ind_rd_buffer_size, default 4 MB).
  std::uint64_t buffer_size = 4ull << 20;
  /// Sieve only when useful bytes / window bytes >= this threshold;
  /// otherwise fall back to direct extent reads for that window.
  double min_useful_fraction = 0.0;
};

struct IndependentStats {
  double total_s = 0;
  std::uint64_t bytes_moved = 0;     ///< user payload delivered
  std::uint64_t bytes_accessed = 0;  ///< bytes actually read from the PFS
  std::uint64_t pfs_requests = 0;
};

/// Reads this rank's extents directly from the PFS (every extent is a
/// separate request — the non-contiguous small-I/O pattern that motivates
/// two-phase collective I/O). With sieving, whole windows are read and the
/// useful bytes extracted.
IndependentStats read_indep(mpi::Comm& comm, pfs::FileId file,
                            const FlatRequest& mine, std::span<std::byte> dst,
                            const SievingConfig& sieving = {});

/// Independent write (no write sieving: extents are written one by one).
IndependentStats write_indep(mpi::Comm& comm, pfs::FileId file,
                             const FlatRequest& mine,
                             std::span<const std::byte> src);

}  // namespace colcom::romio

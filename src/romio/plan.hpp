// Two-phase planning: aggregator selection, file-domain partitioning, and
// the collective exchange of access information ("all processes share their
// accessing information by exchanging the offset list" — paper Sec. III-B).
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "romio/request.hpp"

namespace colcom::romio {

/// MPI-IO-style hints controlling the two-phase engine.
struct Hints {
  std::uint64_t cb_buffer_size = 4ull << 20;  ///< per-iteration chunk (4 MB)
  /// Aggregator count; -1 selects one per compute node (ROMIO default).
  int cb_nodes = -1;
  /// Overlap the read of chunk k+1 with the shuffle of chunk k (the
  /// nonblocking two-phase the paper profiles in Fig. 1).
  bool pipelined = true;
  /// Align file-domain boundaries down to stripe boundaries.
  bool stripe_aligned_fd = false;
  std::uint64_t stripe_size = 4ull << 20;  ///< used when stripe_aligned_fd
  /// File domains and the global range are aligned to this many bytes.
  /// Collective computing sets it to the element size so chunks never split
  /// an element (a requirement for mapping in place).
  std::uint64_t fd_alignment = 1;
  /// Holes up to this size inside a chunk are read through (data sieving);
  /// larger holes split the chunk read so unrequested regions are skipped,
  /// as ROMIO does.
  std::uint64_t sieve_gap = 64ull << 10;
  /// Collective context id (like an MPI context): concurrent collective
  /// operations on one communicator must use distinct contexts so their
  /// internal tags cannot cross-match. 0 is the default blocking context.
  int context = 0;
  /// Staging-aware aggregator placement: rank candidates by the staged
  /// bytes of the target file resident in their burst-buffer caches
  /// (build_plan's `my_residency`), so replans and follow-up queries land
  /// on ranks whose warm chunks survive. Warm ranks are taken score-first,
  /// and a warm pool larger than the default aggregator count grows the
  /// set rather than truncating it (up to cb_nodes when set — cb_nodes >
  /// n_nodes warm pools are honored — or the alive pool otherwise); the
  /// remainder falls back to the spaced default, and an all-cold world
  /// selects exactly the default placement. Off by default: the extra
  /// allgather costs a little plan time and placement is bit-stable
  /// without it.
  bool staging_aware_placement = false;
};

/// The byte extents an aggregator actually reads for one chunk: the union
/// of all requests inside the chunk, with holes <= sieve_gap read through.
std::vector<pfs::ByteExtent> chunk_read_extents(
    const std::vector<FlatRequest>& domain_requests, pfs::ByteExtent chunk,
    std::uint64_t sieve_gap);

/// The collectively agreed plan. Identical on every rank except for
/// `my_request` / aggregator-held peer requests.
struct TwoPhasePlan {
  std::uint64_t gmin = 0;  ///< global min offset
  std::uint64_t gmax = 0;  ///< global max offset (one past last byte)
  std::vector<int> aggregators;        ///< ranks acting as aggregators
  std::vector<std::uint64_t> fd_begin; ///< per-aggregator domain start
  std::vector<std::uint64_t> fd_end;   ///< per-aggregator domain end
  int n_iters = 0;                     ///< lockstep iteration count
  std::uint64_t cb = 0;                ///< chunk bytes per iteration

  /// Peer requests clipped to my file domain — populated on aggregators
  /// only, indexed by rank.
  std::vector<FlatRequest> domain_requests;

  /// Full (unclipped) request of every rank, replicated to all ranks at
  /// plan time — populated only when the installed chaos schedule carries
  /// control-plane crash points. With the access metadata everywhere,
  /// recovering a dead aggregator's file domain is a pure local computation
  /// (replan_local) that survives cascading failures: no survivor ever
  /// needs to re-ask a rank that may itself die mid-exchange.
  std::vector<FlatRequest> all_requests;

  int aggregator_count() const { return static_cast<int>(aggregators.size()); }
  /// Index of `rank` among aggregators, or -1.
  int aggregator_index(int rank) const;
  bool is_aggregator(int rank) const { return aggregator_index(rank) >= 0; }

  /// Chunk range of aggregator `a` at iteration `k` (may be empty).
  pfs::ByteExtent chunk(int a, int k) const;

  /// A copy of the plan with every byte offset moved by `delta` — valid for
  /// translation-invariant iterative access (core::IterativeComputer).
  TwoPhasePlan shifted(std::int64_t delta) const;

  /// Flat byte image of the whole plan (including domain_requests) for
  /// checkpointing; deserialize() inverts it exactly.
  std::vector<std::byte> serialize() const;
  static TwoPhasePlan deserialize(std::span<const std::byte> bytes);
};

/// Builds the plan collectively. Every rank must call with its own request.
/// Cost model: one allreduce for [gmin,gmax) plus each rank shipping its
/// clipped offset list to each intersecting aggregator. Ranks already
/// crashed at t=0 under an installed chaos schedule are never selected as
/// aggregators. `my_residency` is this rank's staging-residency score
/// (stage::StagingArea::residency_bytes of the target file), consulted only
/// under hints.staging_aware_placement — which adds one allgather to share
/// the scores.
TwoPhasePlan build_plan(mpi::Comm& comm, const FlatRequest& mine,
                        const Hints& hints, std::uint64_t my_residency = 0);

/// Message-free plan build over replicated access metadata: computes the
/// plan a healthy build_plan would agree on for a world whose alive members
/// are exactly `survivors` (ascending world ranks), from every rank's full
/// request (`all_requests`, indexed by world rank; entries of ranks outside
/// `survivors` are ignored and treated as empty). Pure local computation —
/// no collectives, so it is safe to call with dead world members and
/// produces the identical plan on every survivor. Aggregator candidates
/// come from `survivors`; staging-aware placement is never consulted (its
/// residency allgather is a collective). `rank` only selects whether
/// domain_requests is populated (this caller is an aggregator of the
/// result); `n_nodes` feeds the default aggregator count.
TwoPhasePlan build_plan_local(const std::vector<FlatRequest>& all_requests,
                              const std::vector<int>& survivors, int rank,
                              int n_nodes, const Hints& hints);

/// Recovery exchange after aggregator `dead_agg` (an index into
/// plan.aggregators) fails: every rank ships the part of its offset list
/// falling in the dead aggregator's file domain to every rank in
/// `survivors`, so any survivor can serve the dead domain's chunks. All
/// ranks must call; returns the per-rank clipped requests (indexed by rank)
/// on ranks in `survivors` and an empty vector elsewhere.
std::vector<FlatRequest> replan_exchange(mpi::Comm& comm,
                                         const TwoPhasePlan& plan,
                                         int dead_agg,
                                         const std::vector<int>& survivors,
                                         const FlatRequest& mine,
                                         const Hints& hints);

/// Message-free variant of replan_exchange for plans carrying replicated
/// access metadata (plan.all_requests): every caller clips every rank's
/// request to the dead aggregator's file domain locally. Because nothing is
/// exchanged, the result is identical on every survivor even when further
/// ranks die concurrently — the property the fault-tolerant control plane
/// relies on for cascading-failure recovery. Contains the `replan` chaos
/// crash point.
std::vector<FlatRequest> replan_local(mpi::Comm& comm,
                                      const TwoPhasePlan& plan, int dead_agg);

}  // namespace colcom::romio

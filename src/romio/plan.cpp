#include "romio/plan.hpp"

#include <algorithm>
#include <limits>

#include "check/check.hpp"
#include "fault/chaos.hpp"
#include "mpi/ft.hpp"
#include "mpi/world.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace colcom::romio {

namespace {
constexpr int kPlanTag = -2000;
constexpr int kReplanTag = -2400;
constexpr int kReplicaTag = -2500;
// Context ids shift internal tags by blocks of 16 so concurrent collectives
// (distinct contexts) cannot cross-match.
int plan_tag(const Hints& hints) { return kPlanTag - hints.context * 16; }
int replan_tag(const Hints& hints) { return kReplanTag - hints.context * 16; }
int replica_tag(const Hints& hints) { return kReplicaTag - hints.context * 16; }

[[maybe_unused]] const bool kTagsRegistered = [] {
  for (int ctx = 0; ctx < 8; ++ctx) {
    const std::string suffix = "(ctx " + std::to_string(ctx) + ")";
    check::register_tag(kPlanTag - ctx * 16, "romio.plan" + suffix);
    check::register_tag(kReplanTag - ctx * 16, "romio.replan" + suffix);
    check::register_tag(kReplicaTag - ctx * 16, "romio.replica" + suffix);
  }
  return true;
}();

// FNV-1a over every hint field the two-phase plan consumes; the CHK-HINT
// open signature. Hints that diverge across ranks of one collective open
// hash differently and trip the checker.
std::uint64_t hint_signature(const Hints& h) {
  std::uint64_t s = 1469598103934665603ull;
  auto mix = [&s](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      s ^= (v >> (8 * i)) & 0xff;
      s *= 1099511628211ull;
    }
  };
  mix(h.cb_buffer_size);
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(h.cb_nodes)));
  mix(h.pipelined ? 1 : 0);
  mix(h.stripe_aligned_fd ? 1 : 0);
  mix(h.stripe_size);
  mix(h.fd_alignment);
  mix(h.sieve_gap);
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(h.context)));
  mix(h.staging_aware_placement ? 1 : 0);
  return s;
}

std::string hint_describe(const Hints& h) {
  return "cb_buffer_size=" + std::to_string(h.cb_buffer_size) +
         " cb_nodes=" + std::to_string(h.cb_nodes) +
         " pipelined=" + std::to_string(h.pipelined ? 1 : 0) +
         " stripe_aligned_fd=" + std::to_string(h.stripe_aligned_fd ? 1 : 0) +
         " stripe_size=" + std::to_string(h.stripe_size) +
         " fd_alignment=" + std::to_string(h.fd_alignment) +
         " sieve_gap=" + std::to_string(h.sieve_gap) +
         " context=" + std::to_string(h.context);
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_u64(std::span<const std::byte> bytes, std::size_t& pos) {
  COLCOM_EXPECT(pos + 8 <= bytes.size());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 8;
  return v;
}
}

std::vector<pfs::ByteExtent> chunk_read_extents(
    const std::vector<FlatRequest>& domain_requests, pfs::ByteExtent chunk,
    std::uint64_t sieve_gap) {
  std::vector<pfs::ByteExtent> needed;
  for (const auto& req : domain_requests) {
    for (const auto& p : req.intersect(chunk.offset, chunk.end())) {
      needed.push_back(pfs::ByteExtent{p.file_off, p.len});
    }
  }
  if (needed.empty()) return needed;
  std::sort(needed.begin(), needed.end(),
            [](const pfs::ByteExtent& a, const pfs::ByteExtent& b) {
              return a.offset != b.offset ? a.offset < b.offset
                                          : a.length < b.length;
            });
  // Merge overlaps and sieve small holes.
  std::size_t out = 0;
  for (std::size_t i = 1; i < needed.size(); ++i) {
    if (needed[i].offset <= needed[out].end() + sieve_gap) {
      needed[out].length =
          std::max(needed[out].end(), needed[i].end()) - needed[out].offset;
    } else {
      needed[++out] = needed[i];
    }
  }
  needed.resize(out + 1);
  return needed;
}

int TwoPhasePlan::aggregator_index(int rank) const {
  for (std::size_t i = 0; i < aggregators.size(); ++i) {
    if (aggregators[i] == rank) return static_cast<int>(i);
  }
  return -1;
}

TwoPhasePlan TwoPhasePlan::shifted(std::int64_t delta) const {
  TwoPhasePlan p = *this;
  auto move = [delta](std::uint64_t v) {
    COLCOM_EXPECT_MSG(delta >= 0 || v >= static_cast<std::uint64_t>(-delta),
                      "plan shift would move offsets before 0");
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(v) + delta);
  };
  p.gmin = move(p.gmin);
  p.gmax = move(p.gmax);
  for (auto& b : p.fd_begin) b = move(b);
  for (auto& e : p.fd_end) e = move(e);
  for (auto& req : p.domain_requests) req = req.shifted(delta);
  for (auto& req : p.all_requests) req = req.shifted(delta);
  return p;
}

std::vector<std::byte> TwoPhasePlan::serialize() const {
  std::vector<std::byte> out;
  put_u64(out, gmin);
  put_u64(out, gmax);
  put_u64(out, static_cast<std::uint64_t>(n_iters));
  put_u64(out, cb);
  put_u64(out, aggregators.size());
  for (const int a : aggregators) {
    put_u64(out, static_cast<std::uint64_t>(a));
  }
  for (const std::uint64_t b : fd_begin) put_u64(out, b);
  for (const std::uint64_t e : fd_end) put_u64(out, e);
  put_u64(out, domain_requests.size());
  for (const FlatRequest& req : domain_requests) {
    const std::vector<std::byte> wire = req.serialize();
    put_u64(out, wire.size());
    out.insert(out.end(), wire.begin(), wire.end());
  }
  put_u64(out, all_requests.size());
  for (const FlatRequest& req : all_requests) {
    const std::vector<std::byte> wire = req.serialize();
    put_u64(out, wire.size());
    out.insert(out.end(), wire.begin(), wire.end());
  }
  return out;
}

TwoPhasePlan TwoPhasePlan::deserialize(std::span<const std::byte> bytes) {
  TwoPhasePlan p;
  std::size_t pos = 0;
  p.gmin = get_u64(bytes, pos);
  p.gmax = get_u64(bytes, pos);
  p.n_iters = static_cast<int>(get_u64(bytes, pos));
  p.cb = get_u64(bytes, pos);
  const std::uint64_t naggs = get_u64(bytes, pos);
  p.aggregators.reserve(naggs);
  for (std::uint64_t i = 0; i < naggs; ++i) {
    p.aggregators.push_back(static_cast<int>(get_u64(bytes, pos)));
  }
  for (std::uint64_t i = 0; i < naggs; ++i) {
    p.fd_begin.push_back(get_u64(bytes, pos));
  }
  for (std::uint64_t i = 0; i < naggs; ++i) {
    p.fd_end.push_back(get_u64(bytes, pos));
  }
  const std::uint64_t nreqs = get_u64(bytes, pos);
  p.domain_requests.reserve(nreqs);
  for (std::uint64_t i = 0; i < nreqs; ++i) {
    const std::uint64_t n = get_u64(bytes, pos);
    COLCOM_EXPECT(pos + n <= bytes.size());
    p.domain_requests.push_back(
        FlatRequest::deserialize(bytes.subspan(pos, n)));
    pos += n;
  }
  const std::uint64_t nall = get_u64(bytes, pos);
  p.all_requests.reserve(nall);
  for (std::uint64_t i = 0; i < nall; ++i) {
    const std::uint64_t n = get_u64(bytes, pos);
    COLCOM_EXPECT(pos + n <= bytes.size());
    p.all_requests.push_back(FlatRequest::deserialize(bytes.subspan(pos, n)));
    pos += n;
  }
  COLCOM_EXPECT_MSG(pos == bytes.size(), "trailing bytes in plan image");
  return p;
}

pfs::ByteExtent TwoPhasePlan::chunk(int a, int k) const {
  const auto ia = static_cast<std::size_t>(a);
  COLCOM_EXPECT(ia < fd_begin.size() && k >= 0);
  const std::uint64_t begin =
      fd_begin[ia] + static_cast<std::uint64_t>(k) * cb;
  if (begin >= fd_end[ia]) return pfs::ByteExtent{0, 0};
  const std::uint64_t end = std::min(begin + cb, fd_end[ia]);
  return pfs::ByteExtent{begin, end - begin};
}

TwoPhasePlan build_plan(mpi::Comm& comm, const FlatRequest& mine,
                        const Hints& hints, std::uint64_t my_residency) {
  COLCOM_EXPECT(hints.cb_buffer_size >= 1);
  TRACE_SPAN(comm.engine(), "romio", "plan");
  if (check::Checker* ck = check::Checker::current()) {
    ck->on_collective_open(comm.rank(), hint_signature(hints),
                           hint_describe(hints));
  }
  TwoPhasePlan plan;
  plan.cb = hints.cb_buffer_size;

  // Agree on the global access range.
  const std::int64_t my_min =
      mine.empty() ? std::numeric_limits<std::int64_t>::max()
                   : static_cast<std::int64_t>(mine.min_offset());
  const std::int64_t my_max =
      mine.empty() ? 0 : static_cast<std::int64_t>(mine.max_offset());
  std::int64_t gmin = 0, gmax = 0;
  comm.allreduce(&my_min, &gmin, 1, mpi::Prim::i64, mpi::Op::min());
  comm.allreduce(&my_max, &gmax, 1, mpi::Prim::i64, mpi::Op::max());
  if (gmin >= gmax) {  // nobody accesses anything
    plan.gmin = plan.gmax = 0;
    return plan;
  }
  plan.gmin = static_cast<std::uint64_t>(gmin);
  plan.gmax = static_cast<std::uint64_t>(gmax);
  if (hints.fd_alignment > 1) {
    // Round the range outward so domain boundaries land on element borders.
    plan.gmin -= plan.gmin % hints.fd_alignment;
    plan.gmax += (hints.fd_alignment - plan.gmax % hints.fd_alignment) %
                 hints.fd_alignment;
    COLCOM_EXPECT_MSG(hints.cb_buffer_size % hints.fd_alignment == 0,
                      "cb_buffer_size must be a multiple of fd_alignment");
  }

  // Aggregator selection: cb_nodes ranks spread evenly (default: the first
  // rank of each compute node, ROMIO's one-aggregator-per-node default).
  // Under an installed chaos schedule, ranks already crashed at t=0 are
  // excluded from the candidate pool.
  const int nprocs = comm.size();
  std::vector<int> pool;
  pool.reserve(static_cast<std::size_t>(nprocs));
  {
    fault::Injector* fi = comm.runtime().chaos();
    const bool watch = fi != nullptr && fi->watch_aggregators();
    for (int r = 0; r < nprocs; ++r) {
      if (watch && fi->schedule().aggregator_crashed(r, 0.0)) continue;
      pool.push_back(r);
    }
  }
  COLCOM_EXPECT_MSG(!pool.empty(), "every rank crashed before t=0");
  const int npool = static_cast<int>(pool.size());
  int naggs = hints.cb_nodes > 0 ? std::min(hints.cb_nodes, npool)
                                 : std::min(comm.runtime().n_nodes(), npool);
  naggs = std::max(1, naggs);
  const int spacing = std::max(1, npool / naggs);
  std::vector<int> spaced;
  spaced.reserve(static_cast<std::size_t>(naggs));
  for (int a = 0; a < naggs; ++a) {
    spaced.push_back(
        pool[static_cast<std::size_t>(std::min(a * spacing, npool - 1))]);
  }
  if (hints.staging_aware_placement) {
    // Staging-aware placement: every rank shares its burst-buffer residency
    // score for the target file; warm ranks (score > 0) are selected first,
    // highest score wins, rank id breaks ties — deterministic, so every
    // rank derives the identical aggregator list. Cold slots fall back to
    // the spaced default, and an all-cold exchange reproduces it exactly.
    std::vector<std::uint64_t> scores(static_cast<std::size_t>(nprocs), 0);
    {
      const std::vector<std::uint64_t> counts(
          static_cast<std::size_t>(nprocs), sizeof(std::uint64_t));
      comm.allgatherv(
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(&my_residency),
              sizeof(my_residency)),
          counts,
          std::span<std::byte>(reinterpret_cast<std::byte*>(scores.data()),
                               scores.size() * sizeof(std::uint64_t)));
    }
    std::vector<int> warm;
    for (int r : pool) {
      if (scores[static_cast<std::size_t>(r)] > 0) warm.push_back(r);
    }
    std::stable_sort(warm.begin(), warm.end(), [&scores](int a, int b) {
      return scores[static_cast<std::size_t>(a)] >
             scores[static_cast<std::size_t>(b)];
    });
    if (static_cast<int>(warm.size()) > naggs) {
      // A warm pool larger than the default aggregator count grows the
      // set instead of truncating it: dropping a warm rank would re-read
      // its resident chunks cold. An explicit cb_nodes still caps the
      // growth (the hint is authoritative), as does the alive pool.
      const int cap =
          hints.cb_nodes > 0 ? std::min(hints.cb_nodes, npool) : npool;
      naggs = std::min(static_cast<int>(warm.size()), cap);
      if (static_cast<int>(warm.size()) > naggs) {
        warm.resize(static_cast<std::size_t>(naggs));
      }
    }
    plan.aggregators = warm;
    for (int r : spaced) {
      if (static_cast<int>(plan.aggregators.size()) >= naggs) break;
      if (std::find(plan.aggregators.begin(), plan.aggregators.end(), r) ==
          plan.aggregators.end()) {
        plan.aggregators.push_back(r);
      }
    }
    // Backstop when the spaced defaults collide with warm picks: fill from
    // the pool front.
    for (int r : pool) {
      if (static_cast<int>(plan.aggregators.size()) >= naggs) break;
      if (std::find(plan.aggregators.begin(), plan.aggregators.end(), r) ==
          plan.aggregators.end()) {
        plan.aggregators.push_back(r);
      }
    }
  } else {
    plan.aggregators = std::move(spaced);
  }

  // Even file-domain partitioning (optionally stripe-aligned).
  const std::uint64_t len = plan.gmax - plan.gmin;
  std::uint64_t per = (len + static_cast<std::uint64_t>(naggs) - 1) /
                      static_cast<std::uint64_t>(naggs);
  if (hints.stripe_aligned_fd && hints.stripe_size > 0) {
    per = ((per + hints.stripe_size - 1) / hints.stripe_size) *
          hints.stripe_size;
  }
  if (hints.fd_alignment > 1) {
    per = ((per + hints.fd_alignment - 1) / hints.fd_alignment) *
          hints.fd_alignment;
  }
  per = std::max<std::uint64_t>(per, 1);
  std::uint64_t max_domain = 0;
  for (int a = 0; a < naggs; ++a) {
    const std::uint64_t b =
        std::min(plan.gmax, plan.gmin + static_cast<std::uint64_t>(a) * per);
    const std::uint64_t e = std::min(plan.gmax, b + per);
    plan.fd_begin.push_back(b);
    plan.fd_end.push_back(e);
    max_domain = std::max(max_domain, e - b);
  }
  plan.n_iters =
      static_cast<int>((max_domain + plan.cb - 1) / plan.cb);

  // Exchange access information: every rank ships the part of its offset
  // list that falls in each aggregator's file domain to that aggregator.
  TRACE_SPAN(comm.engine(), "romio", "exchange");
  std::vector<mpi::Request> sends;
  std::vector<std::vector<std::byte>> wires(plan.aggregators.size());
  for (int a = 0; a < naggs; ++a) {
    const auto ia = static_cast<std::size_t>(a);
    std::vector<pfs::ByteExtent> clipped;
    for (const auto& p : mine.intersect(plan.fd_begin[ia], plan.fd_end[ia])) {
      clipped.push_back(pfs::ByteExtent{p.file_off, p.len});
    }
    wires[ia] = FlatRequest(std::move(clipped)).serialize();
    sends.push_back(comm.isend(plan.aggregators[ia], plan_tag(hints), wires[ia]));
  }

  if (plan.is_aggregator(comm.rank())) {
    plan.domain_requests.resize(static_cast<std::size_t>(nprocs));
    // Receive every rank's clipped list (deterministic rank order).
    // The sender's clipped-list size is unknown a priori; recv() enforces
    // fit, so use a staging buffer large enough for any realistic offset
    // list (256k extents). recv_ft degrades to recv() without an injector
    // and turns a mid-exchange peer death into a structured fault instead
    // of a hang.
    std::vector<std::byte> buf(4 << 20);
    for (int r = 0; r < nprocs; ++r) {
      const auto info = comm.recv_ft(r, plan_tag(hints), buf);
      plan.domain_requests[static_cast<std::size_t>(r)] =
          FlatRequest::deserialize(
              std::span<const std::byte>(buf.data(), info.bytes));
    }
  }
  mpi::wait_all(sends);

  // Under a chaos schedule with control-plane crash points, replicate every
  // rank's full offset list to every rank. The O(P^2) wire cost buys a
  // crucial property: once build_plan returns, recovering any aggregator's
  // file domain (replan_local) needs no further messages, so recovery
  // survives cascading deaths during the recovery itself. The plan-exchange
  // crash point deliberately fires only after replication — a rank dying
  // here has already contributed its metadata (and data) everywhere.
  {
    fault::Injector* fi = comm.runtime().chaos();
    if (fi != nullptr && fi->schedule().has_crash_points()) {
      const std::vector<std::byte> wire = mine.serialize();
      std::vector<mpi::Request> rsends;
      rsends.reserve(static_cast<std::size_t>(nprocs));
      for (int r = 0; r < nprocs; ++r) {
        if (r == comm.rank()) continue;
        rsends.push_back(comm.isend(r, replica_tag(hints), wire));
      }
      plan.all_requests.resize(static_cast<std::size_t>(nprocs));
      std::vector<std::byte> buf(4 << 20);
      for (int r = 0; r < nprocs; ++r) {
        if (r == comm.rank()) {
          plan.all_requests[static_cast<std::size_t>(r)] = mine;
          continue;
        }
        const auto info = comm.recv_ft(r, replica_tag(hints), buf);
        plan.all_requests[static_cast<std::size_t>(r)] =
            FlatRequest::deserialize(
                std::span<const std::byte>(buf.data(), info.bytes));
      }
      mpi::wait_all(rsends);
      mpi::ft::crash_point(comm, fault::Phase::plan_exchange);
    }
  }
  return plan;
}

TwoPhasePlan build_plan_local(const std::vector<FlatRequest>& all_requests,
                              const std::vector<int>& survivors, int rank,
                              int n_nodes, const Hints& hints) {
  COLCOM_EXPECT(hints.cb_buffer_size >= 1);
  COLCOM_EXPECT(!survivors.empty());
  TwoPhasePlan plan;
  plan.cb = hints.cb_buffer_size;

  // The global access range over the survivors' requests (a dead rank's
  // share of the hyperslab is simply not part of the shrunken-world job).
  std::int64_t gmin = std::numeric_limits<std::int64_t>::max();
  std::int64_t gmax = 0;
  for (int r : survivors) {
    const FlatRequest& req = all_requests[static_cast<std::size_t>(r)];
    if (req.empty()) continue;
    gmin = std::min(gmin, static_cast<std::int64_t>(req.min_offset()));
    gmax = std::max(gmax, static_cast<std::int64_t>(req.max_offset()));
  }
  if (gmin >= gmax) {  // nobody accesses anything
    plan.gmin = plan.gmax = 0;
    return plan;
  }
  plan.gmin = static_cast<std::uint64_t>(gmin);
  plan.gmax = static_cast<std::uint64_t>(gmax);
  if (hints.fd_alignment > 1) {
    plan.gmin -= plan.gmin % hints.fd_alignment;
    plan.gmax += (hints.fd_alignment - plan.gmax % hints.fd_alignment) %
                 hints.fd_alignment;
    COLCOM_EXPECT_MSG(hints.cb_buffer_size % hints.fd_alignment == 0,
                      "cb_buffer_size must be a multiple of fd_alignment");
  }

  // Spaced aggregator selection over the survivor pool — the same math as
  // build_plan's default placement with `survivors` as the alive pool.
  const std::vector<int>& pool = survivors;
  const int npool = static_cast<int>(pool.size());
  int naggs = hints.cb_nodes > 0 ? std::min(hints.cb_nodes, npool)
                                 : std::min(n_nodes, npool);
  naggs = std::max(1, naggs);
  const int spacing = std::max(1, npool / naggs);
  for (int a = 0; a < naggs; ++a) {
    plan.aggregators.push_back(
        pool[static_cast<std::size_t>(std::min(a * spacing, npool - 1))]);
  }

  // Even file-domain partitioning (same math as build_plan).
  const std::uint64_t len = plan.gmax - plan.gmin;
  std::uint64_t per = (len + static_cast<std::uint64_t>(naggs) - 1) /
                      static_cast<std::uint64_t>(naggs);
  if (hints.stripe_aligned_fd && hints.stripe_size > 0) {
    per = ((per + hints.stripe_size - 1) / hints.stripe_size) *
          hints.stripe_size;
  }
  if (hints.fd_alignment > 1) {
    per = ((per + hints.fd_alignment - 1) / hints.fd_alignment) *
          hints.fd_alignment;
  }
  per = std::max<std::uint64_t>(per, 1);
  std::uint64_t max_domain = 0;
  for (int a = 0; a < naggs; ++a) {
    const std::uint64_t b =
        std::min(plan.gmax, plan.gmin + static_cast<std::uint64_t>(a) * per);
    const std::uint64_t e = std::min(plan.gmax, b + per);
    plan.fd_begin.push_back(b);
    plan.fd_end.push_back(e);
    max_domain = std::max(max_domain, e - b);
  }
  plan.n_iters = static_cast<int>((max_domain + plan.cb - 1) / plan.cb);

  // Replicated metadata: survivors' full requests everywhere (dead ranks
  // stay empty), so later aggregator deaths still recover via replan_local.
  const int nprocs = static_cast<int>(all_requests.size());
  plan.all_requests.resize(static_cast<std::size_t>(nprocs));
  for (int r : survivors) {
    plan.all_requests[static_cast<std::size_t>(r)] =
        all_requests[static_cast<std::size_t>(r)];
  }

  // Local clipping instead of the offset-list exchange: with every
  // survivor's request in hand, an aggregator's domain_requests is a pure
  // function of the plan (the replan_local property).
  const int my_agg = plan.aggregator_index(rank);
  if (my_agg >= 0) {
    const auto ia = static_cast<std::size_t>(my_agg);
    plan.domain_requests.resize(static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) {
      std::vector<pfs::ByteExtent> clipped;
      for (const auto& p : plan.all_requests[static_cast<std::size_t>(r)]
                               .intersect(plan.fd_begin[ia],
                                          plan.fd_end[ia])) {
        clipped.push_back(pfs::ByteExtent{p.file_off, p.len});
      }
      plan.domain_requests[static_cast<std::size_t>(r)] =
          FlatRequest(std::move(clipped));
    }
  }
  return plan;
}

std::vector<FlatRequest> replan_exchange(mpi::Comm& comm,
                                         const TwoPhasePlan& plan,
                                         int dead_agg,
                                         const std::vector<int>& survivors,
                                         const FlatRequest& mine,
                                         const Hints& hints) {
  const auto id = static_cast<std::size_t>(dead_agg);
  COLCOM_EXPECT(id < plan.fd_begin.size());
  TRACE_SPAN(comm.engine(), "romio", "replan");
  // Ship my offset list clipped to the dead domain to every survivor, so
  // any of them can serve its chunks.
  std::vector<pfs::ByteExtent> clipped;
  for (const auto& p : mine.intersect(plan.fd_begin[id], plan.fd_end[id])) {
    clipped.push_back(pfs::ByteExtent{p.file_off, p.len});
  }
  const std::vector<std::byte> wire =
      FlatRequest(std::move(clipped)).serialize();
  std::vector<mpi::Request> sends;
  sends.reserve(survivors.size());
  for (const int s : survivors) {
    sends.push_back(comm.isend(s, replan_tag(hints), wire));
  }

  std::vector<FlatRequest> absorbed;
  if (std::find(survivors.begin(), survivors.end(), comm.rank()) !=
      survivors.end()) {
    const int nprocs = comm.size();
    absorbed.resize(static_cast<std::size_t>(nprocs));
    std::vector<std::byte> buf(4 << 20);
    for (int r = 0; r < nprocs; ++r) {
      const auto info = comm.recv(r, replan_tag(hints), buf);
      absorbed[static_cast<std::size_t>(r)] = FlatRequest::deserialize(
          std::span<const std::byte>(buf.data(), info.bytes));
    }
  }
  mpi::wait_all(sends);
  return absorbed;
}

std::vector<FlatRequest> replan_local(mpi::Comm& comm,
                                      const TwoPhasePlan& plan,
                                      int dead_agg) {
  mpi::ft::crash_point(comm, fault::Phase::replan);
  const auto id = static_cast<std::size_t>(dead_agg);
  COLCOM_EXPECT(id < plan.fd_begin.size());
  COLCOM_EXPECT_MSG(!plan.all_requests.empty(),
                    "replan_local needs the access metadata replicated at "
                    "plan time (chaos crash points installed before "
                    "build_plan)");
  TRACE_SPAN(comm.engine(), "romio", "replan_local");
  std::vector<FlatRequest> absorbed;
  absorbed.reserve(plan.all_requests.size());
  for (const FlatRequest& req : plan.all_requests) {
    std::vector<pfs::ByteExtent> clipped;
    for (const auto& p : req.intersect(plan.fd_begin[id], plan.fd_end[id])) {
      clipped.push_back(pfs::ByteExtent{p.file_off, p.len});
    }
    absorbed.push_back(FlatRequest(std::move(clipped)));
  }
  return absorbed;
}

}  // namespace colcom::romio

// Nonblocking collective I/O (NB-CIO) — the libNBC / PnetCDF-style baseline
// the paper discusses in Sec. V-A.
//
// The entire two-phase collective read runs on a helper fiber ("progress
// thread"), so the caller can overlap *independent* computation and wait()
// later. Note the contrast with collective computing: NB-CIO cannot compute
// on the data stream itself, only next to it.
//
// Concurrent NB-CIO operations on one communicator must use distinct
// `context` ids (the analogue of MPI context ids) so their internal tags do
// not cross-match.
#pragma once

#include <memory>

#include "des/completion.hpp"
#include "romio/collective.hpp"

namespace colcom::romio {

class NbRequest {
 public:
  NbRequest() = default;
  bool valid() const { return state_ != nullptr; }

  /// Blocks the calling fiber until the collective read finished on this
  /// rank; returns its stats.
  const CollectiveStats& wait() {
    COLCOM_EXPECT(valid());
    state_->done.wait();
    return state_->stats;
  }

  bool done() const { return valid() && state_->done.done(); }

 private:
  friend NbRequest nb_read_all(mpi::Comm&, pfs::FileId, const FlatRequest&,
                               std::span<std::byte>, const Hints&, int);
  struct State {
    des::Completion done;
    CollectiveStats stats;
  };
  std::shared_ptr<State> state_;
};

/// Starts a nonblocking collective read. ALL ranks of the communicator must
/// start the matching operation (with the same context) — exactly like
/// ncmpi_iget_vara + wait. `dst` must stay alive until wait() returns.
NbRequest nb_read_all(mpi::Comm& comm, pfs::FileId file,
                      const FlatRequest& mine, std::span<std::byte> dst,
                      const Hints& hints = {}, int context = 1);

}  // namespace colcom::romio

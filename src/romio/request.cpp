#include "romio/request.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"

namespace colcom::romio {

FlatRequest::FlatRequest(std::vector<pfs::ByteExtent> extents)
    : extents_(std::move(extents)) {
  buf_displ_.reserve(extents_.size());
  std::uint64_t pos = 0;
  std::uint64_t prev_end = 0;
  for (std::size_t i = 0; i < extents_.size(); ++i) {
    COLCOM_EXPECT_MSG(extents_[i].length > 0, "zero-length extent");
    COLCOM_EXPECT_MSG(i == 0 || extents_[i].offset >= prev_end,
                      "extents must be sorted and non-overlapping");
    prev_end = extents_[i].end();
    buf_displ_.push_back(pos);
    pos += extents_[i].length;
  }
  total_ = pos;
}

FlatRequest FlatRequest::from_datatype(std::uint64_t file_base,
                                       const mpi::Datatype& type,
                                       std::uint64_t count) {
  std::vector<pfs::ByteExtent> ext;
  for (const auto& s : type.flatten(count)) {
    ext.push_back(pfs::ByteExtent{file_base + s.disp, s.length});
  }
  return FlatRequest(std::move(ext));
}

std::uint64_t FlatRequest::min_offset() const {
  COLCOM_EXPECT(!empty());
  return extents_.front().offset;
}

std::uint64_t FlatRequest::max_offset() const {
  COLCOM_EXPECT(!empty());
  return extents_.back().end();
}

std::vector<Piece> FlatRequest::intersect(std::uint64_t lo,
                                          std::uint64_t hi) const {
  std::vector<Piece> out;
  if (lo >= hi || extents_.empty()) return out;
  // First extent whose end is past lo.
  auto it = std::lower_bound(
      extents_.begin(), extents_.end(), lo,
      [](const pfs::ByteExtent& e, std::uint64_t v) { return e.end() <= v; });
  for (; it != extents_.end() && it->offset < hi; ++it) {
    const std::uint64_t cl = std::max(lo, it->offset);
    const std::uint64_t ch = std::min(hi, it->end());
    if (cl >= ch) continue;
    const auto idx = static_cast<std::size_t>(it - extents_.begin());
    out.push_back(Piece{cl, ch - cl, buf_displ_[idx] + (cl - it->offset)});
  }
  return out;
}

std::uint64_t FlatRequest::bytes_in(std::uint64_t lo, std::uint64_t hi) const {
  std::uint64_t n = 0;
  for (const auto& p : intersect(lo, hi)) n += p.len;
  return n;
}

std::vector<std::byte> FlatRequest::serialize() const {
  std::vector<std::byte> wire(8 + extents_.size() * 16);
  const std::uint64_t n = extents_.size();
  std::memcpy(wire.data(), &n, 8);
  for (std::size_t i = 0; i < extents_.size(); ++i) {
    std::memcpy(wire.data() + 8 + i * 16, &extents_[i].offset, 8);
    std::memcpy(wire.data() + 8 + i * 16 + 8, &extents_[i].length, 8);
  }
  return wire;
}

FlatRequest FlatRequest::shifted(std::int64_t delta) const {
  std::vector<pfs::ByteExtent> ext = extents_;
  for (auto& e : ext) {
    COLCOM_EXPECT_MSG(delta >= 0 || e.offset >=
                          static_cast<std::uint64_t>(-delta),
                      "shift would move an extent before offset 0");
    e.offset = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(e.offset) + delta);
  }
  return FlatRequest(std::move(ext));
}

FlatRequest FlatRequest::deserialize(std::span<const std::byte> wire) {
  COLCOM_EXPECT(wire.size() >= 8);
  std::uint64_t n = 0;
  std::memcpy(&n, wire.data(), 8);
  COLCOM_EXPECT(wire.size() >= 8 + n * 16);
  std::vector<pfs::ByteExtent> ext(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::memcpy(&ext[i].offset, wire.data() + 8 + i * 16, 8);
    std::memcpy(&ext[i].length, wire.data() + 8 + i * 16 + 8, 8);
  }
  return FlatRequest(std::move(ext));
}

}  // namespace colcom::romio

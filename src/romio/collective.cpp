#include "romio/collective.hpp"

#include "mpi/runtime.hpp"

#include <algorithm>
#include <cstring>

#include "check/check.hpp"
#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace colcom::romio {

namespace {
constexpr int kReadDataTag = -2100;
constexpr int kWriteDataTag = -2200;
int read_tag(const Hints& h) { return kReadDataTag - h.context * 16; }
int write_tag(const Hints& h) { return kWriteDataTag - h.context * 16; }

[[maybe_unused]] const bool kTagsRegistered = [] {
  for (int ctx = 0; ctx < 8; ++ctx) {
    const std::string suffix = "(ctx " + std::to_string(ctx) + ")";
    check::register_tag(kReadDataTag - ctx * 16, "romio.read" + suffix);
    check::register_tag(kWriteDataTag - ctx * 16, "romio.write" + suffix);
  }
  return true;
}();

/// Packs `pieces` of the chunk buffer (which covers file range starting at
/// `chunk_lo`) into a contiguous wire buffer.
std::vector<std::byte> pack_pieces(std::span<const std::byte> chunk_buf,
                                   std::uint64_t chunk_lo,
                                   const std::vector<Piece>& pieces) {
  std::uint64_t total = 0;
  for (const auto& p : pieces) total += p.len;
  std::vector<std::byte> out(total);
  std::uint64_t pos = 0;
  for (const auto& p : pieces) {
    std::memcpy(out.data() + pos, chunk_buf.data() + (p.file_off - chunk_lo),
                p.len);
    pos += p.len;
  }
  return out;
}
}  // namespace

namespace {
/// Bounded independent re-read of one extent after the collective read's
/// PFS retry budget ran out. Each attempt is a fresh request (the PFS
/// re-rolls its transient-fault decision per request), so a handful of
/// attempts recovers any transiently failing extent; a persistently failing
/// one rethrows the last fault::Error.
des::Completion fallback_read(pfs::Pfs& fs, pfs::FileId file,
                              std::uint64_t offset, std::span<std::byte> dst) {
  constexpr int kFallbackAttempts = 4;
  for (int i = 0;; ++i) {
    try {
      return fs.read_async(file, offset, dst);
    } catch (const fault::Error&) {
      if (i + 1 >= kFallbackAttempts) throw;
    }
  }
}

/// Write-side twin of fallback_read: bounded independent retries of one
/// extent after the collective write's retry budget ran out.
des::Completion fallback_write(pfs::Pfs& fs, pfs::FileId file,
                               std::uint64_t offset,
                               std::span<const std::byte> src) {
  constexpr int kFallbackAttempts = 4;
  for (int i = 0;; ++i) {
    try {
      return fs.write_async(file, offset, src);
    } catch (const fault::Error&) {
      if (i + 1 >= kFallbackAttempts) throw;
    }
  }
}
}  // namespace

void ChunkReader::issue(pfs::Pfs& fs, pfs::FileId file,
                        const std::vector<FlatRequest>& domain_requests,
                        pfs::ByteExtent chunk, std::vector<std::byte>& buf,
                        std::uint64_t sieve_gap, double now,
                        fault::Injector* chaos) {
  chunk_ = chunk;
  pending_.clear();
  extents_.clear();
  bytes_ = 0;
  issued_at_ = now;
  done_at_ = now;
  issued_ = true;
  buf.resize(chunk.length);
  if (chunk.length == 0) return;
  extents_ = chunk_read_extents(domain_requests, chunk, sieve_gap);
  for (const auto& e : extents_) {
    const auto dst =
        std::span<std::byte>(buf).subspan(e.offset - chunk.offset, e.length);
    try {
      pending_.push_back(fs.read_async(file, e.offset, dst));
    } catch (const fault::Error&) {
      // Degrade to independent I/O for this extent instead of aborting the
      // whole collective read.
      pending_.push_back(fallback_read(fs, file, e.offset, dst));
      ++fallbacks_;
      if (chaos != nullptr) chaos->note_io_fallback();
    }
    bytes_ += e.length;
  }
}

void ChunkReader::wait() {
  COLCOM_EXPECT(issued_);
  for (const auto& c : pending_) {
    c.wait();
    done_at_ = std::max(done_at_, c.ready_at());
  }
}

double ChunkReader::service_time() const { return done_at_ - issued_at_; }

CollectiveStats CollectiveIo::read_all(mpi::Comm& comm, pfs::FileId file,
                                       const FlatRequest& mine,
                                       std::span<std::byte> dst) {
  COLCOM_EXPECT(dst.size() >= mine.total_bytes());
  TRACE_SPAN(comm.engine(), "romio", "read_all");
  CollectiveStats stats;
  const double t_begin = comm.wtime();
  TwoPhasePlan plan = build_plan(comm, mine, hints_);
  stats.plan_s = comm.wtime() - t_begin;
  const int my_agg = plan.aggregator_index(comm.rank());
  auto& fs = comm.runtime().fs();
  const double pack_bw = comm.runtime().config().pack_bw;

  // Aggregator state: double-buffered chunks for the pipelined variant.
  std::vector<std::byte> bufs[2];
  ChunkReader reader;
  auto issue_read = [&](int k) {
    reader.issue(fs, file, plan.domain_requests, plan.chunk(my_agg, k),
                 bufs[k % 2], hints_.sieve_gap, comm.wtime(),
                 comm.runtime().chaos());
  };

  if (my_agg >= 0) {
    stats.iters.resize(static_cast<std::size_t>(plan.n_iters));
    if (plan.n_iters > 0) issue_read(0);
  }

  std::vector<std::byte> staging;
  for (int k = 0; k < plan.n_iters; ++k) {
    std::vector<mpi::Request> sends;
    std::vector<std::vector<std::byte>> wires;
    if (my_agg >= 0) {
      auto& is = stats.iters[static_cast<std::size_t>(k)];
      const pfs::ByteExtent c = reader.chunk();
      TRACE_COUNT(comm.engine(), ::colcom::trace::Track::ranks,
                  "romio.aggregation_rounds", 1);
      const double wait_begin = comm.wtime();
      {
        TRACE_SPAN(comm.engine(), "romio", "io");
        reader.wait();
      }
      is.stall_s = comm.wtime() - wait_begin;
      is.read_s = reader.service_time();
      is.read_bytes = reader.bytes_read();
      const std::span<const std::byte> chunk_buf(bufs[k % 2]);

      // Nonblocking two-phase: fetch the next chunk while shuffling this one.
      if (hints_.pipelined && k + 1 < plan.n_iters) issue_read(k + 1);

      const double shuffle_begin = comm.wtime();
      {
        TRACE_SPAN(comm.engine(), "romio", "shuffle");
        if (c.length > 0) {
          for (int r = 0; r < comm.size(); ++r) {
            const auto pieces =
                plan.domain_requests[static_cast<std::size_t>(r)].intersect(
                    c.offset, c.offset + c.length);
            if (pieces.empty()) continue;
            wires.push_back(pack_pieces(chunk_buf, c.offset, pieces));
            is.shuffle_bytes += wires.back().size();
            TRACE_COUNT(comm.engine(), ::colcom::trace::Track::ranks,
                        "romio.shuffle_bytes", wires.back().size());
            // Pack cost (sys time) at the aggregator.
            comm.overhead(static_cast<double>(wires.back().size()) / pack_bw);
            sends.push_back(comm.isend(r, read_tag(hints_), wires.back()));
          }
        }
        // Receive own pieces below, then account the shuffle completion.
        receive_for_iteration(comm, plan, mine, dst, k, staging, stats);
        mpi::wait_all(sends);
      }
      is.shuffle_s = comm.wtime() - shuffle_begin;
      if (!hints_.pipelined && k + 1 < plan.n_iters) issue_read(k + 1);
    } else {
      TRACE_SPAN(comm.engine(), "romio", "shuffle");
      receive_for_iteration(comm, plan, mine, dst, k, staging, stats);
    }
  }
  stats.total_s = comm.wtime() - t_begin;
  return stats;
}

void CollectiveIo::receive_for_iteration(mpi::Comm& comm,
                                         const TwoPhasePlan& plan,
                                         const FlatRequest& mine,
                                         std::span<std::byte> dst, int k,
                                         std::vector<std::byte>& staging,
                                         CollectiveStats& stats) {
  // Post every expected receive up front (ROMIO posts all irecvs then
  // waits), then scatter each aggregator's payload into the user buffer.
  struct Incoming {
    std::vector<Piece> pieces;
    std::uint64_t total = 0;
    std::uint64_t staging_off = 0;
    mpi::Request req;
  };
  std::vector<Incoming> incoming;
  std::uint64_t staging_total = 0;
  for (int a = 0; a < plan.aggregator_count(); ++a) {
    const pfs::ByteExtent c = plan.chunk(a, k);
    if (c.length == 0) continue;
    auto pieces = mine.intersect(c.offset, c.offset + c.length);
    if (pieces.empty()) continue;
    Incoming in;
    in.pieces = std::move(pieces);
    for (const auto& p : in.pieces) in.total += p.len;
    in.staging_off = staging_total;
    staging_total += in.total;
    incoming.push_back(std::move(in));
  }
  if (incoming.empty()) return;
  staging.resize(staging_total);
  std::size_t idx = 0;
  for (int a = 0; a < plan.aggregator_count(); ++a) {
    const pfs::ByteExtent c = plan.chunk(a, k);
    if (c.length == 0) continue;
    if (idx >= incoming.size()) break;
    // Incoming entries were appended in aggregator order; match them back.
    Incoming& in = incoming[idx];
    if (mine.bytes_in(c.offset, c.offset + c.length) == 0) continue;
    in.req = comm.irecv(
        plan.aggregators[static_cast<std::size_t>(a)], read_tag(hints_),
        std::span<std::byte>(staging).subspan(in.staging_off, in.total));
    ++idx;
  }
  const double unpack_bw = comm.runtime().config().memcpy_bw;
  for (auto& in : incoming) {
    in.req.wait();
    COLCOM_ENSURE(in.req.info().bytes == in.total);
    std::uint64_t pos = in.staging_off;
    for (const auto& p : in.pieces) {
      std::memcpy(dst.data() + p.buf_off, staging.data() + pos, p.len);
      pos += p.len;
    }
    comm.overhead(static_cast<double>(in.total) / unpack_bw);
    stats.bytes_moved += in.total;
  }
}

CollectiveStats CollectiveIo::write_all(mpi::Comm& comm, pfs::FileId file,
                                        const FlatRequest& mine,
                                        std::span<const std::byte> src) {
  COLCOM_EXPECT(src.size() >= mine.total_bytes());
  TRACE_SPAN(comm.engine(), "romio", "write_all");
  CollectiveStats stats;
  const double t_begin = comm.wtime();
  TwoPhasePlan plan = build_plan(comm, mine, hints_);
  stats.plan_s = comm.wtime() - t_begin;
  const int my_agg = plan.aggregator_index(comm.rank());
  auto& fs = comm.runtime().fs();
  const double pack_bw = comm.runtime().config().pack_bw;

  std::vector<std::byte> chunk_buf;
  std::vector<std::byte> staging;
  for (int k = 0; k < plan.n_iters; ++k) {
    // Everyone ships its pieces of each aggregator's current chunk.
    std::vector<mpi::Request> sends;
    std::vector<std::vector<std::byte>> wires;
    for (int a = 0; a < plan.aggregator_count(); ++a) {
      const pfs::ByteExtent c = plan.chunk(a, k);
      if (c.length == 0) continue;
      const auto pieces = mine.intersect(c.offset, c.offset + c.length);
      if (pieces.empty()) continue;
      std::uint64_t total = 0;
      for (const auto& p : pieces) total += p.len;
      std::vector<std::byte> wire(total);
      std::uint64_t pos = 0;
      for (const auto& p : pieces) {
        std::memcpy(wire.data() + pos, src.data() + p.buf_off, p.len);
        pos += p.len;
      }
      comm.overhead(static_cast<double>(total) / pack_bw);
      wires.push_back(std::move(wire));
      stats.bytes_moved += total;
      sends.push_back(comm.isend(plan.aggregators[static_cast<std::size_t>(a)],
                                 write_tag(hints_), wires.back()));
    }

    if (my_agg >= 0) {
      auto& is = ensure_iter(stats, plan.n_iters, k);
      const pfs::ByteExtent c = plan.chunk(my_agg, k);
      if (c.length > 0) {
        TRACE_COUNT(comm.engine(), ::colcom::trace::Track::ranks,
                    "romio.aggregation_rounds", 1);
        const double shuffle_begin = comm.wtime();
        {
          TRACE_SPAN(comm.engine(), "romio", "shuffle");
          chunk_buf.resize(c.length);
          // Collect pieces from every contributing rank (deterministic
          // order); track coverage to decide whether a pre-read is needed.
          std::uint64_t covered = 0;
          std::vector<std::pair<const FlatRequest*, int>> contributors;
          for (int r = 0; r < comm.size(); ++r) {
            const auto& req = plan.domain_requests[static_cast<std::size_t>(r)];
            const auto pieces = req.intersect(c.offset, c.offset + c.length);
            if (pieces.empty()) continue;
            for (const auto& p : pieces) covered += p.len;
            contributors.emplace_back(&req, r);
          }
          const bool holes = covered < c.length;
          if (holes) {
            // Read-modify-write (ROMIO's data sieving on the write path).
            const double t0 = comm.wtime();
            {
              TRACE_SPAN(comm.engine(), "romio", "io");
              try {
                fs.read(file, c.offset, chunk_buf);
              } catch (const fault::Error&) {
                fallback_read(fs, file, c.offset, chunk_buf).wait();
                ++stats.io_fallbacks;
                if (auto* chaos = comm.runtime().chaos(); chaos != nullptr) {
                  chaos->note_io_fallback();
                }
              }
            }
            is.read_s += comm.wtime() - t0;
            is.read_bytes += c.length;
          }
          for (const auto& [req, r] : contributors) {
            const auto pieces = req->intersect(c.offset, c.offset + c.length);
            std::uint64_t total = 0;
            for (const auto& p : pieces) total += p.len;
            staging.resize(total);
            const auto info = comm.recv(r, write_tag(hints_), staging);
            COLCOM_ENSURE(info.bytes == total);
            std::uint64_t pos = 0;
            for (const auto& p : pieces) {
              std::memcpy(chunk_buf.data() + (p.file_off - c.offset),
                          staging.data() + pos, p.len);
              pos += p.len;
            }
            is.shuffle_bytes += total;
            TRACE_COUNT(comm.engine(), ::colcom::trace::Track::ranks,
                        "romio.shuffle_bytes", total);
          }
        }
        is.shuffle_s += comm.wtime() - shuffle_begin;
        const double w0 = comm.wtime();
        {
          TRACE_SPAN(comm.engine(), "romio", "io");
          try {
            fs.write(file, c.offset, chunk_buf);
          } catch (const fault::Error&) {
            // Degrade to independent stripe-sized writes instead of failing
            // the collective: each is a fresh request with fresh retry
            // budget, so transient OST faults cannot lose the chunk.
            const std::uint64_t stripe = fs.config().stripe_size;
            fault::Injector* chaos = comm.runtime().chaos();
            for (std::uint64_t pos = 0; pos < c.length; pos += stripe) {
              const std::uint64_t len = std::min(stripe, c.length - pos);
              fallback_write(
                  fs, file, c.offset + pos,
                  std::span<const std::byte>(chunk_buf).subspan(pos, len))
                  .wait();
              ++stats.io_fallbacks;
              if (chaos != nullptr) chaos->note_io_fallback();
            }
          }
        }
        is.read_s += comm.wtime() - w0;  // I/O phase time (write side)
        is.read_bytes += c.length;
      }
    }
    mpi::wait_all(sends);
  }
  stats.total_s = comm.wtime() - t_begin;
  return stats;
}

IterStat& CollectiveIo::ensure_iter(CollectiveStats& stats, int n_iters,
                                    int k) {
  if (stats.iters.empty()) {
    stats.iters.resize(static_cast<std::size_t>(n_iters));
  }
  return stats.iters[static_cast<std::size_t>(k)];
}

}  // namespace colcom::romio

#include "ncio/dataset.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace colcom::ncio {

namespace {

constexpr std::uint32_t kMagic = 0x4e434f4cu;  // "NCOL"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kVarAlign = 4096;  // stripe-friendly variable starts

/// Composite store: the header region plus one region per variable, each
/// delegating to its own backing store.
class RegionStore final : public pfs::Store {
 public:
  struct Region {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::unique_ptr<pfs::Store> store;
  };

  explicit RegionStore(std::vector<Region> regions)
      : regions_(std::move(regions)) {
    std::uint64_t prev = 0;
    for (const auto& r : regions_) {
      COLCOM_EXPECT(r.begin >= prev && r.end - r.begin == r.store->size());
      prev = r.end;
    }
    size_ = prev;
  }

  void read(std::uint64_t offset, std::span<std::byte> dst) const override {
    COLCOM_EXPECT(offset + dst.size() <= size_);
    std::uint64_t pos = 0;
    while (pos < dst.size()) {
      const std::uint64_t abs = offset + pos;
      const Region& r = region_at(abs);
      if (abs < r.begin) {
        // Alignment gap: zero-fill.
        const std::uint64_t n =
            std::min<std::uint64_t>(r.begin - abs, dst.size() - pos);
        std::memset(dst.data() + pos, 0, n);
        pos += n;
        continue;
      }
      const std::uint64_t n =
          std::min<std::uint64_t>(r.end - abs, dst.size() - pos);
      r.store->read(abs - r.begin, dst.subspan(pos, n));
      pos += n;
    }
  }

  void write(std::uint64_t offset, std::span<const std::byte> src) override {
    COLCOM_EXPECT(offset + src.size() <= size_);
    std::uint64_t pos = 0;
    while (pos < src.size()) {
      const std::uint64_t abs = offset + pos;
      Region& r = const_cast<Region&>(region_at(abs));
      COLCOM_EXPECT_MSG(abs >= r.begin, "write into alignment gap");
      const std::uint64_t n =
          std::min<std::uint64_t>(r.end - abs, src.size() - pos);
      r.store->write(abs - r.begin, src.subspan(pos, n));
      pos += n;
    }
  }

  std::uint64_t size() const override { return size_; }

 private:
  /// Region containing or following `abs`.
  const Region& region_at(std::uint64_t abs) const {
    for (const auto& r : regions_) {
      if (abs < r.end) return r;
    }
    COLCOM_EXPECT_MSG(false, "offset past last region");
    return regions_.back();
  }

  std::vector<Region> regions_;
  std::uint64_t size_ = 0;
};

template <typename T>
void put(std::vector<std::byte>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T take(std::span<const std::byte>& in) {
  COLCOM_EXPECT(in.size() >= sizeof(T));
  T v;
  std::memcpy(&v, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return v;
}

std::vector<std::byte> serialize_header(const std::vector<VarInfo>& vars) {
  std::vector<std::byte> out;
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint32_t>(vars.size()));
  for (const auto& v : vars) {
    put(out, static_cast<std::uint32_t>(v.name.size()));
    const auto* p = reinterpret_cast<const std::byte*>(v.name.data());
    out.insert(out.end(), p, p + v.name.size());
    put(out, static_cast<std::uint8_t>(v.prim));
    put(out, static_cast<std::uint32_t>(v.dims.size()));
    for (auto d : v.dims) put(out, d);
    put(out, v.file_offset);
  }
  return out;
}

std::vector<VarInfo> parse_header(std::span<const std::byte> in) {
  COLCOM_EXPECT_MSG(take<std::uint32_t>(in) == kMagic, "bad dataset magic");
  COLCOM_EXPECT_MSG(take<std::uint32_t>(in) == kVersion,
                    "unsupported dataset version");
  const auto nvars = take<std::uint32_t>(in);
  std::vector<VarInfo> vars(nvars);
  for (auto& v : vars) {
    const auto name_len = take<std::uint32_t>(in);
    COLCOM_EXPECT(in.size() >= name_len);
    v.name.assign(reinterpret_cast<const char*>(in.data()), name_len);
    in = in.subspan(name_len);
    v.prim = static_cast<mpi::Prim>(take<std::uint8_t>(in));
    const auto ndims = take<std::uint32_t>(in);
    v.dims.resize(ndims);
    for (auto& d : v.dims) d = take<std::uint64_t>(in);
    v.file_offset = take<std::uint64_t>(in);
  }
  return vars;
}

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace

// ------------------------------------------------------------ Builder

DatasetBuilder::DatasetBuilder(pfs::Pfs& fs, std::string filename)
    : fs_(&fs), filename_(std::move(filename)) {}

DatasetBuilder& DatasetBuilder::add_var(const std::string& name,
                                        mpi::Prim prim,
                                        std::vector<std::uint64_t> dims) {
  COLCOM_EXPECT(!dims.empty() && dims.size() <= 8);
  PendingVar pv;
  pv.info.name = name;
  pv.info.prim = prim;
  pv.info.dims = std::move(dims);
  vars_.push_back(std::move(pv));
  return *this;
}

DatasetBuilder& DatasetBuilder::add_generated_impl(
    const std::string& name, mpi::Prim prim, std::vector<std::uint64_t> dims,
    std::unique_ptr<pfs::Store> store) {
  COLCOM_EXPECT(!dims.empty() && dims.size() <= 8);
  PendingVar pv;
  pv.info.name = name;
  pv.info.prim = prim;
  pv.info.dims = std::move(dims);
  pv.store = std::move(store);
  COLCOM_EXPECT(pv.store->size() == pv.info.byte_size());
  vars_.push_back(std::move(pv));
  return *this;
}

Dataset DatasetBuilder::finish() {
  COLCOM_EXPECT_MSG(!vars_.empty(), "dataset needs at least one variable");
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    for (std::size_t j = i + 1; j < vars_.size(); ++j) {
      COLCOM_EXPECT_MSG(vars_[i].info.name != vars_[j].info.name,
                        "duplicate variable name");
    }
  }
  // Two-pass layout: header size depends only on metadata arity.
  std::vector<VarInfo> infos;
  infos.reserve(vars_.size());
  for (const auto& pv : vars_) infos.push_back(pv.info);
  std::uint64_t header_size = serialize_header(infos).size();
  std::uint64_t cursor = align_up(header_size, kVarAlign);
  for (auto& v : infos) {
    v.file_offset = cursor;
    cursor = align_up(cursor + v.byte_size(), kVarAlign);
  }
  const auto header = serialize_header(infos);
  COLCOM_ENSURE(header.size() == header_size);

  std::vector<RegionStore::Region> regions;
  auto header_store = std::make_unique<pfs::MemStore>(
      align_up(header_size, kVarAlign));
  header_store->write(0, header);
  regions.push_back({0, header_store->size(), std::move(header_store)});
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    auto store = vars_[i].store
                     ? std::move(vars_[i].store)
                     : std::make_unique<pfs::MemStore>(infos[i].byte_size());
    regions.push_back({infos[i].file_offset,
                       infos[i].file_offset + infos[i].byte_size(),
                       std::move(store)});
  }
  auto file =
      fs_->create(filename_, std::make_unique<RegionStore>(std::move(regions)));
  return Dataset(*fs_, file, std::move(infos));
}

// ------------------------------------------------------------ Dataset

Dataset Dataset::open(pfs::Pfs& fs, const std::string& filename) {
  const auto file = fs.open(filename);
  const auto& store = fs.store(file);
  // Header parse is charged no virtual time: PnetCDF caches the header at
  // open and it is negligible against the experiments' data volumes.
  std::vector<std::byte> head(
      std::min<std::uint64_t>(store.size(), 1u << 20));
  store.read(0, head);
  return Dataset(fs, file, parse_header(head));
}

VarId Dataset::var(const std::string& name) const {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return VarId{static_cast<int>(i)};
  }
  COLCOM_EXPECT_MSG(false, "no such variable: " + name);
  return VarId{};
}

const VarInfo& Dataset::info(VarId id) const {
  COLCOM_EXPECT(id.valid() && id.index < var_count());
  return vars_[static_cast<std::size_t>(id.index)];
}

void Dataset::check_type(VarId id, mpi::Prim p) const {
  COLCOM_EXPECT_MSG(info(id).prim == p,
                    "element type does not match variable " + info(id).name);
}

romio::FlatRequest Dataset::slab_request(
    VarId id, std::span<const std::uint64_t> start,
    std::span<const std::uint64_t> count) const {
  const VarInfo& v = info(id);
  COLCOM_EXPECT(start.size() == v.dims.size() &&
                count.size() == v.dims.size());
  const auto type = mpi::Datatype::subarray(v.dims, count, start,
                                            mpi::Datatype::of(v.prim));
  return romio::FlatRequest::from_datatype(v.file_offset, type);
}

romio::FlatRequest Dataset::slab_request_strided(
    VarId id, std::span<const std::uint64_t> start,
    std::span<const std::uint64_t> count,
    std::span<const std::uint64_t> stride) const {
  const VarInfo& v = info(id);
  const std::size_t nd = v.dims.size();
  COLCOM_EXPECT(start.size() == nd && count.size() == nd &&
                stride.size() == nd);
  const std::uint64_t es = mpi::prim_size(v.prim);
  std::vector<std::uint64_t> dim_stride(nd, 1);  // row strides in elements
  for (std::size_t d = nd - 1; d > 0; --d) {
    dim_stride[d - 1] = dim_stride[d] * v.dims[d];
  }
  for (std::size_t d = 0; d < nd; ++d) {
    COLCOM_EXPECT(stride[d] >= 1 && count[d] >= 1);
    COLCOM_EXPECT_MSG(start[d] + (count[d] - 1) * stride[d] < v.dims[d],
                      "strided selection exceeds variable bounds");
  }
  // Unit-stride selections along the fastest dim yield contiguous runs of
  // count[nd-1] elements; otherwise single elements.
  const bool fast_contig = stride[nd - 1] == 1;
  const std::uint64_t run_elems = fast_contig ? count[nd - 1] : 1;
  const std::uint64_t inner_runs = fast_contig ? 1 : count[nd - 1];

  std::vector<pfs::ByteExtent> ext;
  std::vector<std::uint64_t> idx(nd, 0);
  while (true) {
    std::uint64_t elem = 0;
    for (std::size_t d = 0; d + 1 < nd; ++d) {
      elem += (start[d] + idx[d] * stride[d]) * dim_stride[d];
    }
    for (std::uint64_t j = 0; j < inner_runs; ++j) {
      const std::uint64_t e =
          elem + start[nd - 1] + (fast_contig ? 0 : j * stride[nd - 1]);
      const std::uint64_t off = v.file_offset + e * es;
      const std::uint64_t len = run_elems * es;
      if (!ext.empty() && ext.back().end() == off) {
        ext.back().length += len;
      } else {
        ext.push_back(pfs::ByteExtent{off, len});
      }
    }
    if (nd == 1) break;
    std::size_t d = nd - 2;
    while (true) {
      if (++idx[d] < count[d]) break;
      idx[d] = 0;
      if (d == 0) return romio::FlatRequest(std::move(ext));
      --d;
    }
  }
  return romio::FlatRequest(std::move(ext));
}

}  // namespace colcom::ncio

// ncio: a PnetCDF-like self-describing array container over the PFS.
//
// A dataset holds named N-dimensional typed variables laid out sequentially
// after a binary header. get_vara_all() is the analogue of
// ncmpi_get_vara_<type>_all: it converts the hyperslab (start[], count[])
// into a flattened offset list — losing the logical structure exactly like
// the real stack does at the MPI-IO boundary, which is what the paper's
// "logical map" reconstruction (Sec. III-B) must undo — and runs the
// two-phase collective engine.
//
// Variables can be memory-backed (writable) or *generated* from a closed-
// form coords->value function, which gives terabyte-scale logical datasets
// with exact ground truth and zero memory footprint.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "pfs/pfs.hpp"
#include "romio/collective.hpp"
#include "romio/independent.hpp"
#include "romio/request.hpp"

namespace colcom::ncio {

/// Maps C++ element types to wire primitives.
template <typename T>
constexpr mpi::Prim prim_of();
template <> constexpr mpi::Prim prim_of<std::uint8_t>() { return mpi::Prim::u8; }
template <> constexpr mpi::Prim prim_of<std::int32_t>() { return mpi::Prim::i32; }
template <> constexpr mpi::Prim prim_of<std::int64_t>() { return mpi::Prim::i64; }
template <> constexpr mpi::Prim prim_of<float>() { return mpi::Prim::f32; }
template <> constexpr mpi::Prim prim_of<double>() { return mpi::Prim::f64; }

struct VarId {
  int index = -1;
  bool valid() const { return index >= 0; }
};

struct VarInfo {
  std::string name;
  mpi::Prim prim = mpi::Prim::u8;
  std::vector<std::uint64_t> dims;  ///< slowest dimension first (C order)
  std::uint64_t file_offset = 0;    ///< first data byte in the file

  std::uint64_t element_count() const {
    std::uint64_t n = 1;
    for (auto d : dims) n *= d;
    return n;
  }
  std::uint64_t byte_size() const {
    return element_count() * mpi::prim_size(prim);
  }
};

class Dataset;

/// Staged construction: declare variables, then finish() computes the layout
/// and writes the header.
class DatasetBuilder {
 public:
  DatasetBuilder(pfs::Pfs& fs, std::string filename);

  /// Writable variable backed by memory.
  DatasetBuilder& add_var(const std::string& name, mpi::Prim prim,
                          std::vector<std::uint64_t> dims);

  /// Read-only variable whose element at `coords` is fn(coords). The
  /// function must be pure (it is evaluated on demand, possibly repeatedly).
  template <typename T>
  DatasetBuilder& add_generated_var(
      const std::string& name, std::vector<std::uint64_t> dims,
      std::function<T(std::span<const std::uint64_t> coords)> fn) {
    COLCOM_EXPECT(fn != nullptr && !dims.empty());
    std::uint64_t count = 1;
    for (auto d : dims) count *= d;
    auto gen = [dims, fn = std::move(fn)](std::uint64_t idx) -> T {
      std::uint64_t rem = idx;
      // Fixed-size coordinate buffer: datasets here are at most 8-D.
      std::uint64_t coords[8];
      COLCOM_EXPECT(dims.size() <= 8);
      for (std::size_t d = dims.size(); d-- > 0;) {
        coords[d] = rem % dims[d];
        rem /= dims[d];
      }
      return fn(std::span<const std::uint64_t>(coords, dims.size()));
    };
    auto store = pfs::make_element_generator<T>(count, std::move(gen));
    return add_generated_impl(name, prim_of<T>(), std::move(dims),
                              std::move(store));
  }

  /// Computes the layout, registers the file with the PFS and writes the
  /// header. The builder is consumed.
  Dataset finish();

 private:
  friend class Dataset;
  struct PendingVar {
    VarInfo info;
    std::unique_ptr<pfs::Store> store;  // null => memory-backed
  };

  DatasetBuilder& add_generated_impl(const std::string& name, mpi::Prim prim,
                                     std::vector<std::uint64_t> dims,
                                     std::unique_ptr<pfs::Store> store);

  pfs::Pfs* fs_;
  std::string filename_;
  std::vector<PendingVar> vars_;
};

class Dataset {
 public:
  /// Parses the header of an existing dataset file.
  static Dataset open(pfs::Pfs& fs, const std::string& filename);

  VarId var(const std::string& name) const;
  const VarInfo& info(VarId id) const;
  int var_count() const { return static_cast<int>(vars_.size()); }
  pfs::FileId file() const { return file_; }
  pfs::Pfs& fs() const { return *fs_; }

  /// Builds the flattened file request for the hyperslab start[]/count[] of
  /// a variable (the exact offset list the MPI-IO layer sees).
  romio::FlatRequest slab_request(VarId id,
                                  std::span<const std::uint64_t> start,
                                  std::span<const std::uint64_t> count) const;

  /// Strided hyperslab (ncmpi_get_vars): element (i0..in) of the selection
  /// maps to start[d] + i_d * stride[d]. stride[d] >= 1.
  romio::FlatRequest slab_request_strided(
      VarId id, std::span<const std::uint64_t> start,
      std::span<const std::uint64_t> count,
      std::span<const std::uint64_t> stride) const;

  /// Collective hyperslab read (ncmpi_get_vara_*_all). Elements land in
  /// `out` in C order of the slab.
  template <typename T>
  romio::CollectiveStats get_vara_all(mpi::Comm& comm, VarId id,
                                      std::span<const std::uint64_t> start,
                                      std::span<const std::uint64_t> count,
                                      std::span<T> out,
                                      const romio::Hints& hints = {}) const {
    check_type(id, prim_of<T>());
    const auto req = slab_request(id, start, count);
    COLCOM_EXPECT(out.size_bytes() >= req.total_bytes());
    romio::CollectiveIo cio(hints);
    return cio.read_all(comm, file_, req, std::as_writable_bytes(out));
  }

  /// Independent hyperslab read (ncmpi_get_vara_*), optionally sieved.
  template <typename T>
  romio::IndependentStats get_vara(mpi::Comm& comm, VarId id,
                                   std::span<const std::uint64_t> start,
                                   std::span<const std::uint64_t> count,
                                   std::span<T> out,
                                   const romio::SievingConfig& sieving = {}) const {
    check_type(id, prim_of<T>());
    const auto req = slab_request(id, start, count);
    COLCOM_EXPECT(out.size_bytes() >= req.total_bytes());
    return romio::read_indep(comm, file_, req, std::as_writable_bytes(out),
                             sieving);
  }

  /// Collective strided hyperslab read (ncmpi_get_vars_*_all).
  template <typename T>
  romio::CollectiveStats get_vars_all(mpi::Comm& comm, VarId id,
                                      std::span<const std::uint64_t> start,
                                      std::span<const std::uint64_t> count,
                                      std::span<const std::uint64_t> stride,
                                      std::span<T> out,
                                      const romio::Hints& hints = {}) const {
    check_type(id, prim_of<T>());
    const auto req = slab_request_strided(id, start, count, stride);
    COLCOM_EXPECT(out.size_bytes() >= req.total_bytes());
    romio::CollectiveIo cio(hints);
    return cio.read_all(comm, file_, req, std::as_writable_bytes(out));
  }

  /// Collective hyperslab write (ncmpi_put_vara_*_all).
  template <typename T>
  romio::CollectiveStats put_vara_all(mpi::Comm& comm, VarId id,
                                      std::span<const std::uint64_t> start,
                                      std::span<const std::uint64_t> count,
                                      std::span<const T> in,
                                      const romio::Hints& hints = {}) const {
    check_type(id, prim_of<T>());
    const auto req = slab_request(id, start, count);
    COLCOM_EXPECT(in.size_bytes() >= req.total_bytes());
    romio::CollectiveIo cio(hints);
    return cio.write_all(comm, file_, req, std::as_bytes(in));
  }

 private:
  friend class DatasetBuilder;
  Dataset(pfs::Pfs& fs, pfs::FileId file, std::vector<VarInfo> vars)
      : fs_(&fs), file_(file), vars_(std::move(vars)) {}

  void check_type(VarId id, mpi::Prim p) const;

  pfs::Pfs* fs_;
  pfs::FileId file_;
  std::vector<VarInfo> vars_;
};

}  // namespace colcom::ncio

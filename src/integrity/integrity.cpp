#include "integrity/integrity.hpp"

#include "pfs/fault.hpp"
#include "trace/trace.hpp"
#include "util/prng.hpp"

namespace colcom::integrity {

const char* to_string(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::off: return "off";
    case VerifyMode::sampled: return "sampled";
    case VerifyMode::always: return "always";
  }
  return "?";
}

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::pfs_read: return "pfs.read";
    case Stage::cache: return "stage.cache";
    case Stage::write_behind: return "stage.write_behind";
    case Stage::stream_payload: return "stream.payload";
    case Stage::shuffle: return "mpi.shuffle";
    case Stage::checkpoint: return "core.checkpoint";
    case Stage::scrub: return "stage.scrub";
  }
  return "?";
}

std::uint64_t checksum(std::span<const std::byte> bytes) {
  return pfs::fnv1a(bytes);  // lint: allow(raw-fnv1a) the blessed call site
}

Hasher& Hasher::update(std::span<const std::byte> bytes) {
  for (const std::byte b : bytes) {
    h_ ^= static_cast<std::uint64_t>(b);
    h_ *= 0x100000001b3ull;
  }
  return *this;
}

std::uint64_t combine(std::uint64_t acc, std::uint64_t part,
                      std::uint64_t len) {
  // hash_combine-style fold: each input lands on the accumulator through a
  // position-dependent mix, so order and extent boundaries both matter.
  acc ^= part + 0x9e3779b97f4a7c15ull + (acc << 6) + (acc >> 2);
  acc ^= len + 0x9e3779b97f4a7c15ull + (acc << 6) + (acc >> 2);
  return acc;
}

bool should_verify(VerifyMode mode, std::uint64_t key) {
  switch (mode) {
    case VerifyMode::off: return false;
    case VerifyMode::always: return true;
    case VerifyMode::sampled: {
      // Deterministic 1-in-8 keyed by extent identity: the sampled subset
      // is the same every run, so sampled-mode runs stay bit-reproducible.
      SplitMix64 sm(key * 0x9e3779b97f4a7c15ull + 0x1d8e4e27c47d124full);
      return (sm.next() & 7u) == 0;
    }
  }
  return true;
}

namespace {

Stats g_stats;

void bump(const char* name, Stage stage, std::uint64_t n = 1) {
  trace::Tracer* tr = trace::Tracer::current();
  if (tr == nullptr) return;
  tr->metrics().counter(name).add(n);
  tr->metrics()
      .counter(std::string(name) + "." + to_string(stage))
      .add(n);
}

}  // namespace

Stats& stats() { return g_stats; }

void reset_stats() { g_stats = Stats{}; }

void note_verified(Stage stage) {
  ++g_stats.verified;
  bump("integrity.verified", stage);
}

void note_detected(Stage stage) {
  ++g_stats.detected;
  bump("integrity.detected", stage);
}

void note_recovered(Stage stage, std::uint64_t bytes) {
  ++g_stats.recovered;
  g_stats.recovered_bytes += bytes;
  bump("integrity.recovered", stage);
  if (trace::Tracer* tr = trace::Tracer::current()) {
    tr->metrics().counter("integrity.recovered_bytes").add(bytes);
  }
}

void note_scrub_pass(std::uint64_t extents, std::uint64_t repairs) {
  ++g_stats.scrub_passes;
  g_stats.scrub_extents += extents;
  g_stats.scrub_repairs += repairs;
  if (trace::Tracer* tr = trace::Tracer::current()) {
    tr->metrics().counter("integrity.scrub_passes").add(1);
    tr->metrics().counter("integrity.scrub_extents").add(extents);
    tr->metrics().counter("integrity.scrub_repairs").add(repairs);
  }
}

fault::Error make_corrupt_error(fault::Layer layer, Stage stage,
                                const std::string& detail) {
  ++g_stats.failed;
  bump("integrity.failed", stage);
  std::string what = to_string(stage);
  if (!detail.empty()) what += ": " + detail;
  return fault::Error(layer, fault::Kind::data_corrupt, what);
}

}  // namespace colcom::integrity

// colcom::integrity — end-to-end data integrity for every custody transfer.
//
// Every byte in the pipeline changes hands at least four times (PFS →
// aggregator → staging/stream buffer → shuffle → checkpoint), and staged or
// streamed copies bypass filesystem checksums entirely. This module is the
// one place checksums are computed, attached, and verified:
//
//   * `checksum()` / `Hasher` / `combine()` — the FNV-1a primitive (full
//     coverage, incremental, and extent-combinable variants). Raw `fnv1a`
//     calls outside this module are a lint error (`scripts/lint.py`), so
//     new custody transfers cannot silently bypass the layer.
//   * `Stage` — the named custody stages. A corruption that survives its
//     recovery budget surfaces as `fault::Error{data_corrupt}` whose text
//     names the stage ("stage.cache", "core.checkpoint", ...), never as a
//     silently wrong answer.
//   * `Stats` + `integrity.*` trace metrics — detect/recover/fail counters
//     with the invariant `detected == recovered + failed` (every detection
//     is accounted for), plus scrubber progress counters.
//
// Verification policy is per-layer (`VerifyMode`): `always` checks every
// use, `sampled` checks a deterministic 1-in-8 subset keyed by extent
// identity (same extents every run), `off` trusts the bytes — the A/B/C for
// the overhead study in bench/ext_integrity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "fault/fault.hpp"

namespace colcom::integrity {

/// Per-layer verification policy.
enum class VerifyMode {
  off,      ///< trust the bytes (baseline; corruption goes undetected)
  sampled,  ///< verify a deterministic 1-in-8 subset of uses
  always,   ///< verify every use (the default everywhere)
};

const char* to_string(VerifyMode mode);

/// Named custody stages — the vocabulary of detection and failure.
enum class Stage {
  pfs_read,        ///< bytes arriving from the (possibly faulty) store
  cache,           ///< resident stage::ChunkCache entries
  write_behind,    ///< dirty write-behind extents awaiting flush
  stream_payload,  ///< stream::Topic step-buffer contributions
  shuffle,         ///< MPI shuffle envelopes (CHK-SUM sampling)
  checkpoint,      ///< checkpoint generations on the store
  scrub,           ///< the background scrubber over resident extents
};

const char* to_string(Stage stage);

/// 64-bit FNV-1a over the full byte range — the end-to-end checksum.
/// (Delegates to the existing pfs primitive; this is the blessed call site.)
std::uint64_t checksum(std::span<const std::byte> bytes);

/// Incremental FNV-1a: feed extents in order, read the digest at any point.
/// `Hasher{}.update(a).update(b).digest()` == `checksum(a ++ b)`.
class Hasher {
 public:
  Hasher& update(std::span<const std::byte> bytes);
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Folds one extent's digest (and length) into an accumulated chunk digest
/// without touching the bytes again. Order-dependent by design — a chunk's
/// combined sum is a digest over its *sequence* of per-extent digests, not
/// the digest of the concatenated bytes — so extent reordering, truncation,
/// and swapped equal-content extents all change the result. Start from
/// `kCombineSeed`. Lets aggregators keep per-extent sums and still verify a
/// whole multi-extent chunk in O(extents).
constexpr std::uint64_t kCombineSeed = 0xcbf29ce484222325ull;
std::uint64_t combine(std::uint64_t acc, std::uint64_t part, std::uint64_t len);

/// Deterministic sampling decision for `VerifyMode::sampled`, keyed by the
/// extent identity so the same extents verify every run.
bool should_verify(VerifyMode mode, std::uint64_t key);

/// Module-wide counters (the DES is single-threaded; plain fields are safe).
/// Mirrored into `integrity.*` trace metrics by the note_* helpers.
struct Stats {
  std::uint64_t verified = 0;       ///< verifications that ran
  std::uint64_t detected = 0;       ///< checksum mismatches found
  std::uint64_t recovered = 0;      ///< mismatches healed bit-identically
  std::uint64_t failed = 0;         ///< mismatches surfaced as data_corrupt
  std::uint64_t recovered_bytes = 0;  ///< bytes re-fetched/re-read to heal
  std::uint64_t scrub_passes = 0;   ///< scrubber sweeps completed
  std::uint64_t scrub_extents = 0;  ///< resident extents scrubbed
  std::uint64_t scrub_repairs = 0;  ///< rot found and healed by the scrubber
};

Stats& stats();
void reset_stats();

/// Each note_* bumps the stat and the matching `integrity.*` metric (global
/// and per-stage).
///
/// Accounting discipline: `note_detected` counts one corruption *episode* —
/// call it once when a mismatch first sends an extent into recovery, not on
/// every failed retry inside the recovery loop — and close every episode
/// with exactly one `note_recovered` or one `make_corrupt_error`. That is
/// what keeps the acceptance invariant `detected == recovered + failed`.
void note_verified(Stage stage);
void note_detected(Stage stage);
void note_recovered(Stage stage, std::uint64_t bytes);
void note_scrub_pass(std::uint64_t extents, std::uint64_t repairs);

/// Counts the failure and returns the structured error to throw: recovery
/// budget exhausted at `stage`, detected by `layer`. The error text names
/// the custody stage so callers and logs can triage without a debugger.
[[nodiscard]] fault::Error make_corrupt_error(fault::Layer layer, Stage stage,
                                              const std::string& detail);

}  // namespace colcom::integrity

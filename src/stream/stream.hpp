// colcom::stream — in-transit streaming analysis: a virtual-time
// publish/subscribe data plane coupling a simulation producer to the
// collective analysis ranks without the file barrier (cf. Poeschel et al.,
// "Transitioning from file-based HPC workflows to streaming data pipelines
// with openPMD and ADIOS2").
//
// One Topic carries one variable of one dataset, addressed in *file byte
// coordinates*: a published step slab occupies exactly the byte range the
// variable's timestep occupies in the ncio file, so a stream::Reader can
// serve the identical extents a StagedReader would read from the PFS — the
// map/shuffle/reduce path above the chunk-source seam is unchanged, and the
// analysis bits are memcmp-identical between file-based and streaming runs.
//
// Data plane: producer ranks publish() their owned slab rows per step; the
// bytes are copied into the step buffer at burst-buffer bandwidth
// (stage::StageConfig::bb_bw class handoff, never the PFS) and accounted as
// stream pins on the publishing rank's StagingArea. A step is complete when
// its slab is fully covered; completion is monotonic in step order because
// each producer publishes its steps in order.
//
// Flow control is explicit and deterministic: a producer publishing step s
// blocks (DES fiber block/wake, the des/sync.hpp idiom) while
// s >= retired_steps + window — back-pressure counted as
// stream.backpressure_stalls plus stalled virtual seconds. Consumers retire
// a step once every live subscriber consumed it; retirement frees the step
// buffer, releases the stream pins and wakes stalled producers.
//
// Faults: a producer crash point (fault::Phase::stream_publish) fails the
// stream from its first incomplete step — consumers blocked in prepare()
// get a structured fault::Error{Layer::stream, Kind::producer_failed}
// instead of a hang, while already-complete steps still serve (colcom::svc
// turns the error into a failed-with-reason job). A consumer rank death
// unwinds its Reader, whose destructor unsubscribes and recomputes the
// retirement floor, so the producer re-targets the survivors. Published
// extents carry CHK-IO epoch markers in a per-(topic, step) context: dirty
// at publish, sealed (flushed) at step completion, checked at every
// consumer copy. See docs/STREAMING.md.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "pfs/extent.hpp"
#include "pfs/pfs.hpp"
#include "romio/request.hpp"
#include "stage/stage.hpp"

namespace colcom::stream {

/// Knobs of one stream engine (shared by its topics).
struct StreamConfig {
  /// Bounded window of in-flight steps: a producer publishing step s stalls
  /// while s >= retired steps + window. Must be >= 1 (window 1 serializes
  /// producer and consumer step by step; larger windows overlap them).
  int window = 2;
  /// Handoff bandwidth for published bytes (burst-buffer class). A
  /// publishing rank with a StagingArea attached is charged at that area's
  /// bb_bw instead, so file-based staging and streaming price the same
  /// buffer identically.
  double bb_bw = 12e9;
  /// CHK-IO context namespace: topic t's step s carries context
  /// check_ctx_base + t * kCtxStride + (s % kCtxStride), disjoint from the
  /// staging areas' contexts (which are small integers).
  int check_ctx_base = 1 << 16;
};

/// Counters of one topic (Engine::stats() aggregates over topics), mirrored
/// into stream.* trace metrics when a tracer is installed.
struct StreamStats {
  std::uint64_t steps_published = 0;  ///< steps fully covered (completions)
  std::uint64_t bytes_published = 0;  ///< bytes handed off by producers
  std::uint64_t steps_retired = 0;    ///< steps freed after full consumption
  std::uint64_t backpressure_stalls = 0;  ///< publishes that had to wait
  double stall_s = 0;                 ///< virtual seconds producers stalled
  std::uint64_t steps_failed = 0;     ///< pending steps failed by a death
};

/// Where one streamed variable lives in file byte coordinates. For an ncio
/// variable with dims (nt, ...), base is VarInfo::file_offset, step_bytes
/// is byte_size() / nt and n_steps is nt — stream addresses and file
/// addresses coincide, which is what makes the two sources bit-equivalent.
struct TopicLayout {
  pfs::FileId file;
  std::uint64_t base = 0;
  std::uint64_t step_bytes = 0;
  std::uint64_t n_steps = 0;
  /// Producers expected to register over the topic's lifetime (0 = unknown).
  /// Producer registration is not synchronized: a fast rank can stream every
  /// step and close before a slow rank has even constructed its writer, and
  /// without this count the topic would mistake "all registered so far
  /// closed" for end-of-stream and fail the incomplete steps. A producer of
  /// a world-wide writer sets this to the world size.
  int producers = 0;
};

class Reader;

/// One (variable, step-sequence) channel: step buffers, the completion and
/// retirement state machine, and the producer/consumer wait queues.
class Topic {
 public:
  Topic(std::string name, TopicLayout layout, const StreamConfig& cfg,
        int check_ctx);

  Topic(const Topic&) = delete;
  Topic& operator=(const Topic&) = delete;

  const std::string& name() const { return name_; }
  const TopicLayout& layout() const { return layout_; }
  const StreamStats& stats() const { return stats_; }

  /// First never-retired step (steps below are freed).
  std::uint64_t retired_steps() const { return retired_upto_; }
  /// Step the stream failed from (layout().n_steps when healthy or cleanly
  /// closed: every step either completed or will never be awaited).
  std::uint64_t failed_from() const { return failed_from_; }
  bool failed() const { return failed_from_ < layout_.n_steps; }
  /// Bytes currently held in unretired step buffers — the zero-leak
  /// end-state invariant checks this reaches 0 after retirement/teardown.
  std::uint64_t resident_bytes() const;

  // --- producer side (via stream::Producer) ---

  void add_producer() { ++producers_; }
  /// A producer finished cleanly. When the last one closes, steps that can
  /// no longer complete are failed so late consumers error instead of hang.
  void producer_closed(mpi::Comm& comm);
  /// Publishes `bytes` at `step_offset` inside `step`'s slab: blocks under
  /// back-pressure, copies at handoff bandwidth, pins the bytes on `area`
  /// (when given) until retirement, marks the CHK-IO epoch, and wakes
  /// consumers when the step completes. Throws
  /// fault::Error{producer_failed} if the stream already failed.
  /// `takeover = true` is the rank-death re-target path: a survivor
  /// publishing a dead rank's rows silently skips ranges the dead rank
  /// already covered (partial overlaps still abort — only a full cover is
  /// a benign duplicate).
  void publish(mpi::Comm& comm, std::uint64_t step, std::uint64_t step_offset,
               std::span<const std::byte> bytes, stage::StagingArea* area,
               bool takeover = false);
  /// True when [offset, offset + length) of `step`'s slab is already fully
  /// covered by contributions (retired and complete steps count as
  /// covered). Survivors use this to decide which of a dead rank's rows
  /// still need re-targeted publishes.
  bool covered(std::uint64_t step, std::uint64_t offset,
               std::uint64_t length) const;
  /// Fails every incomplete step (producer death): pending and future
  /// awaits throw fault::Error{producer_failed}; complete steps still
  /// serve. Idempotent; wakes every waiter.
  void fail(mpi::Comm& comm);
  /// Rank death: the rank's StagingArea is being torn down with its
  /// process, so unpin and forget every pin the rank holds — later
  /// retirement of its contributions must never touch the destroyed area.
  void release_rank_pins(int rank);

  // --- consumer side (via stream::Reader) ---

  void subscribe(Reader* r);
  /// Drops `r` from the retirement quorum and re-settles the floor — the
  /// consumer-death path (Reader's destructor runs on fiber unwind).
  void unsubscribe(Reader* r);
  /// Blocks until every step overlapping file bytes [lo, hi) is complete;
  /// throws fault::Error{producer_failed} for steps at/after failed_from().
  void await(mpi::Comm& comm, std::uint64_t lo, std::uint64_t hi);
  /// Copies file-addressed bytes [off, off + dst.size()) out of complete
  /// step buffers (CHK-IO read markers; contract error if not complete).
  /// Every contribution is verified against its publish-time checksum the
  /// first time a copy touches it; a mismatch re-requests the bytes from
  /// the producer's unretired shadow (charged at handoff bandwidth) and
  /// throws fault::Error{stream, data_corrupt} naming the stream-payload
  /// custody stage when the producer's copy is bad too.
  void copy(mpi::Comm& comm, std::uint64_t off, std::span<std::byte> dst);
  /// `r` fully consumed file bytes below `hi`; retires steps every live
  /// subscriber consumed, freeing buffers and waking stalled producers.
  void consumed(mpi::Comm& comm, Reader* r, std::uint64_t hi);

 private:
  friend class Reader;

  struct Contribution {
    int rank = -1;
    std::uint64_t offset = 0;  ///< within the step slab
    std::uint64_t length = 0;
    stage::StagingArea* area = nullptr;  ///< pin accounting, may be null
    /// colcom::integrity custody checksum of the published bytes, verified
    /// at the first consumer copy that touches this contribution.
    std::uint64_t sum = 0;
    bool verified = false;
    /// Producer's unretired shadow of the published bytes — the re-request
    /// source when the step buffer fails verification. Stashed only while
    /// corruption chaos is armed (no chaos, no way for the buffer to rot,
    /// no reason to double the resident footprint); freed on verify.
    std::vector<std::byte> pristine;
  };
  struct Step {
    std::vector<std::byte> buf;
    std::uint64_t filled = 0;
    bool complete = false;
    std::vector<Contribution> contribs;
  };

  std::uint64_t step_of(std::uint64_t file_off) const {
    return (file_off - layout_.base) / layout_.step_bytes;
  }
  int ctx_of(std::uint64_t step) const;
  /// First step at/after retired_upto_ that is not complete (n_steps when
  /// everything published). Completion is monotonic in step order.
  std::uint64_t first_incomplete() const;
  /// Verify-on-first-use of a step's contributions (see copy()).
  void verify_contribs(mpi::Comm& comm, std::uint64_t step, Step& s);
  void advance_retirement(mpi::Comm* comm);
  void wake_all(std::deque<int>& waiters);

  std::string name_;
  TopicLayout layout_;
  const StreamConfig* cfg_;
  int check_ctx_;
  StreamStats stats_;
  des::Engine* des_ = nullptr;  ///< bound on first use (any comm call)
  std::map<std::uint64_t, Step> steps_;
  std::uint64_t retired_upto_ = 0;
  std::uint64_t failed_from_;
  int producers_ = 0;
  int closed_producers_ = 0;
  std::vector<Reader*> subscribers_;
  std::deque<int> producer_waiters_;
  std::deque<int> consumer_waiters_;
};

/// The per-world topic registry. Construct at host scope (next to the
/// per-rank result vectors), capture by reference inside the rank fibers:
/// the registry is passive shared state of the DES, all blocking runs
/// through the calling rank's engine.
class Engine {
 public:
  explicit Engine(StreamConfig cfg = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const StreamConfig& config() const { return cfg_; }

  /// Create-or-get: the first call with a name creates the topic from
  /// `layout`; later calls must pass an identical layout.
  Topic& topic(const std::string& name, const TopicLayout& layout);
  Topic* find(const std::string& name);

  /// Aggregated counters over every topic.
  StreamStats stats() const;
  /// Unretired step-buffer bytes over every topic (zero after quiesce).
  std::uint64_t resident_bytes() const;

 private:
  StreamConfig cfg_;
  std::vector<std::pair<std::string, std::unique_ptr<Topic>>> topics_;
};

/// One producing rank's handle on a topic. publish() hands off the rank's
/// owned rows of one step; close() ends the stream cleanly. Destruction
/// without close() — or a fault::Phase::stream_publish crash point — is a
/// producer death: the topic fails from its first incomplete step.
class Producer {
 public:
  Producer(Topic& topic, mpi::Comm& comm, stage::StagingArea* area = nullptr);
  ~Producer();

  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  /// Publishes `bytes` at `step_offset` inside `step`'s slab. Checks the
  /// stream_publish crash point first: a scheduled producer death fails the
  /// topic and throws fault::Error{producer_failed} — the simulation died,
  /// the analysis ranks live on and see the structured error. `takeover`
  /// marks a re-targeted publish of a dead rank's rows (see
  /// Topic::publish).
  void publish(std::uint64_t step, std::uint64_t step_offset,
               std::span<const std::byte> bytes, bool takeover = false);
  void close();

  Topic& topic() { return *topic_; }

 private:
  Topic* topic_;
  mpi::Comm* comm_;
  stage::StagingArea* area_;
  int entries_ = 0;  ///< stream_publish crash-point entry counter
  bool closed_ = false;
};

/// The consumer-side chunk source: plugs into the runtime's chunk-source
/// seam (core::RunOptions::source) so the collective-computing path reads
/// published step bytes exactly where it would read PFS bytes. prepare()
/// blocks until the window's steps are complete (every rank calls it
/// together, so a producer death surfaces on all ranks before any
/// collective); retire() reports full consumption for step retirement.
class Reader : public stage::ChunkSource {
 public:
  /// `sieve_gap` must match the analysis hints so the served extent unions
  /// are identical to the file-based run's. `subscribing = false` builds a
  /// recovery side-channel reader that never holds up retirement (aux()).
  Reader(Topic& topic, mpi::Comm& comm, std::uint64_t sieve_gap = 0,
         bool subscribing = true);
  ~Reader() override;

  bool begin(pfs::ByteExtent chunk,
             const std::vector<romio::FlatRequest>& dreqs,
             bool speculative) override;
  stage::SourceChunk take() override;
  void release() override;
  std::unique_ptr<stage::ChunkSource> aux() override;
  void prepare(std::uint64_t lo, std::uint64_t hi) override;
  void retire(std::uint64_t lo, std::uint64_t hi) override;

  /// First step this subscriber has not yet fully consumed.
  std::uint64_t watermark() const { return watermark_; }

 private:
  friend class Topic;

  struct Fetch {
    pfs::ByteExtent chunk;
    std::vector<pfs::ByteExtent> extents;
  };

  Topic* topic_;
  mpi::Comm* comm_;
  std::uint64_t sieve_gap_;
  bool subscribing_;
  std::uint64_t watermark_ = 0;
  std::deque<Fetch> inflight_;
  std::vector<std::byte> held_buf_;
  std::vector<pfs::ByteExtent> held_extents_;
  bool holding_ = false;
};

}  // namespace colcom::stream

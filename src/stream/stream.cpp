#include "stream/stream.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "check/check.hpp"
#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "integrity/integrity.hpp"
#include "mpi/runtime.hpp"
#include "romio/plan.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace colcom::stream {

namespace {

/// Contexts per topic: step s of a topic carries check context
/// base + (s % kCtxStride), so concurrent steps never share a CHK-IO epoch.
constexpr int kCtxStride = 4096;

void stream_instant(mpi::Comm& comm, const char* name) {
  if (trace::Tracer* t = trace::Tracer::current(); t != nullptr) {
    t->instant(trace::Track::stage, comm.rank(), "stream", name, comm.wtime());
  }
}

/// A dead rank's fiber (producer helper or consumer) woken inside a stream
/// wait must unwind like any other fiber of the killed process — publishing
/// or consuming from beyond the grave would corrupt the re-target protocol.
void check_alive(mpi::Comm& comm) {
  if (!comm.alive(comm.rank())) throw mpi::RankStop{};
}

}  // namespace

// --- Topic ---

Topic::Topic(std::string name, TopicLayout layout, const StreamConfig& cfg,
             int check_ctx)
    : name_(std::move(name)),
      layout_(layout),
      cfg_(&cfg),
      check_ctx_(check_ctx),
      failed_from_(layout.n_steps) {
  COLCOM_EXPECT(layout_.file.valid());
  COLCOM_EXPECT(layout_.step_bytes > 0 && layout_.n_steps > 0);
  COLCOM_EXPECT(cfg_->window >= 1 && cfg_->bb_bw > 0);
}

int Topic::ctx_of(std::uint64_t step) const {
  return check_ctx_ + static_cast<int>(step % kCtxStride);
}

std::uint64_t Topic::first_incomplete() const {
  for (std::uint64_t s = retired_upto_; s < layout_.n_steps; ++s) {
    auto it = steps_.find(s);
    if (it == steps_.end() || !it->second.complete) return s;
  }
  return layout_.n_steps;
}

std::uint64_t Topic::resident_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [s, step] : steps_) total += step.buf.size();
  return total;
}

void Topic::wake_all(std::deque<int>& waiters) {
  while (!waiters.empty()) {
    const int id = waiters.front();
    waiters.pop_front();
    des_->wake(id);
  }
}

bool Topic::covered(std::uint64_t step, std::uint64_t offset,
                    std::uint64_t length) const {
  if (step < retired_upto_) return true;
  auto it = steps_.find(step);
  if (it == steps_.end()) return false;
  if (it->second.complete) return true;
  // Contributions never overlap each other (the publish EXPECT enforces
  // it), so summed intersection lengths measure coverage exactly.
  std::uint64_t got = 0;
  for (const Contribution& c : it->second.contribs) {
    const std::uint64_t lo = std::max(offset, c.offset);
    const std::uint64_t hi = std::min(offset + length, c.offset + c.length);
    if (hi > lo) got += hi - lo;
  }
  return got >= length;
}

void Topic::publish(mpi::Comm& comm, std::uint64_t step,
                    std::uint64_t step_offset,
                    std::span<const std::byte> bytes,
                    stage::StagingArea* area, bool takeover) {
  if (bytes.empty()) return;  // a zero-row producer contributes nothing
  des_ = &comm.engine();
  check_alive(comm);
  COLCOM_EXPECT(step < layout_.n_steps);
  COLCOM_EXPECT(step_offset + bytes.size() <= layout_.step_bytes);
  if (takeover && covered(step, step_offset, bytes.size())) return;
  COLCOM_EXPECT_MSG(step >= retired_upto_, "publish into a retired step");
  if (step >= failed_from_) {
    throw fault::Error(fault::Layer::stream, fault::Kind::producer_failed,
                       "publish on a failed stream: " + name_);
  }

  // Back-pressure: the bounded window of unretired steps. Lagging analysis
  // stalls the producer here in virtual time.
  const double t0 = comm.wtime();
  bool stalled = false;
  while (failed_from_ > step &&
         step >= retired_upto_ + static_cast<std::uint64_t>(cfg_->window)) {
    stalled = true;
    producer_waiters_.push_back(des_->current_actor());
    des_->block();
    check_alive(comm);
  }
  if (stalled) {
    ++stats_.backpressure_stalls;
    stats_.stall_s += comm.wtime() - t0;
    TRACE_COUNT(comm.engine(), trace::Track::stage,
                "stream.backpressure_stalls", 1);
    stream_instant(comm, "stream.backpressure_stall");
  }
  if (step >= failed_from_) {
    throw fault::Error(fault::Layer::stream, fault::Kind::producer_failed,
                       "stream failed while publish was stalled: " + name_);
  }

  // The handoff: copy into the step buffer at burst-buffer bandwidth — the
  // streamed bytes never touch the PFS. The copy charge is a DES wait, so
  // re-check liveness and takeover coverage after it: a contribution is
  // all-or-nothing, and a racing survivor may have covered the range while
  // this fiber was charged.
  const double bw = area != nullptr ? area->config().bb_bw : cfg_->bb_bw;
  comm.overhead(static_cast<double>(bytes.size()) / bw);
  check_alive(comm);
  if (takeover && covered(step, step_offset, bytes.size())) return;
  if (step >= failed_from_) {
    // fail() ran while this fiber was charged: pinning now would leak the
    // contribution — nothing ever erases steps at or past failed_from_.
    throw fault::Error(fault::Layer::stream, fault::Kind::producer_failed,
                       "stream failed during publish copy: " + name_);
  }
  Step& s = steps_[step];
  if (s.buf.empty()) s.buf.resize(layout_.step_bytes);
  std::memcpy(s.buf.data() + step_offset, bytes.data(), bytes.size());
  s.filled += bytes.size();
  COLCOM_EXPECT_MSG(s.filled <= layout_.step_bytes,
                    "producers published overlapping slab rows");
  const std::uint64_t file_off =
      layout_.base + step * layout_.step_bytes + step_offset;
  // Custody transfer: the payload's checksum rides with the contribution
  // and is verified at the first consumer copy (colcom::integrity). While
  // corruption chaos is armed the producer keeps a pristine shadow — the
  // re-request source — and the step-buffer copy may be flipped right
  // here, before any verification, so detection runs under real damage.
  Contribution ctb;
  ctb.rank = comm.rank();
  ctb.offset = step_offset;
  ctb.length = bytes.size();
  ctb.area = area;
  ctb.sum = integrity::checksum(bytes);
  fault::Injector* fi = comm.runtime().chaos();
  if (fi != nullptr && fi->schedule().has_corruption()) {
    ctb.pristine.assign(bytes.begin(), bytes.end());
    if (fi->schedule().corrupt_extent(
            2, static_cast<std::uint64_t>(layout_.file.index), file_off, 0)) {
      fault::chaos_flip(
          std::span<std::byte>(s.buf.data() + step_offset, bytes.size()),
          fi->schedule().config().seed ^
              (static_cast<std::uint64_t>(layout_.file.index) *
                   0x9e3779b97f4a7c15ull +
               file_off));
      fi->note_corruption_injected("stream");
    }
  }
  s.contribs.push_back(std::move(ctb));
  if (area != nullptr) area->stream_pin(bytes.size());
  stats_.bytes_published += bytes.size();
  TRACE_COUNT(comm.engine(), trace::Track::stage, "stream.bytes_published",
              bytes.size());

  if (check::Checker* chk = check::Checker::current(); chk != nullptr) {
    chk->on_stage_write(comm.rank(), layout_.file.index, file_off,
                        bytes.size(), ctx_of(step));
  }

  if (s.filled == layout_.step_bytes) {
    s.complete = true;
    ++stats_.steps_published;
    TRACE_COUNT(comm.engine(), trace::Track::stage, "stream.steps_published",
                1);
    stream_instant(comm, "stream.step_complete");
    // Seal the step's CHK-IO epoch: every contributor's extents of this
    // step's context are now ordered before any consumer read.
    if (check::Checker* chk = check::Checker::current(); chk != nullptr) {
      std::vector<int> ranks;
      for (const Contribution& c : s.contribs) ranks.push_back(c.rank);
      std::sort(ranks.begin(), ranks.end());
      ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
      for (int r : ranks) chk->on_stage_flush(r, ctx_of(step));
    }
    wake_all(consumer_waiters_);
    // No subscriber is waiting to consume: retire eagerly so a consumerless
    // stream cannot wedge its producers on the window.
    if (subscribers_.empty()) advance_retirement(&comm);
  }
}

void Topic::fail(mpi::Comm& comm) {
  des_ = &comm.engine();
  const std::uint64_t from = first_incomplete();
  if (from >= failed_from_) {
    // Already failed at or before this point; nothing new to tear down.
    wake_all(consumer_waiters_);
    wake_all(producer_waiters_);
    return;
  }
  failed_from_ = from;
  // Every step from the failure point to the end of the stream is lost:
  // count them all, not just the ones with partial contributions — a step
  // nobody had published yet is just as undelivered.
  stats_.steps_failed += layout_.n_steps - failed_from_;
  check::Checker* chk = check::Checker::current();
  // Free every step that can no longer complete: its partial bytes will
  // never be served (awaits throw), so holding pins would leak them.
  for (auto it = steps_.lower_bound(failed_from_); it != steps_.end();) {
    std::vector<int> ranks;
    for (const Contribution& c : it->second.contribs) {
      if (c.area != nullptr) c.area->stream_unpin(c.length);
      ranks.push_back(c.rank);
    }
    if (chk != nullptr) {
      std::sort(ranks.begin(), ranks.end());
      ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
      for (int r : ranks) chk->on_stage_flush(r, ctx_of(it->first));
    }
    it = steps_.erase(it);
  }
  TRACE_COUNT(comm.engine(), trace::Track::stage, "stream.steps_failed",
              stats_.steps_failed);
  stream_instant(comm, "stream.fail");
  wake_all(consumer_waiters_);
  wake_all(producer_waiters_);
}

void Topic::release_rank_pins(int rank) {
  for (auto& [s, step] : steps_) {
    for (Contribution& ctb : step.contribs) {
      if (ctb.rank != rank || ctb.area == nullptr) continue;
      ctb.area->stream_unpin(ctb.length);
      ctb.area = nullptr;
    }
  }
}

void Topic::producer_closed(mpi::Comm& comm) {
  ++closed_producers_;
  if (closed_producers_ < std::max(producers_, layout_.producers)) return;
  // Last producer gone: steps that can no longer complete must fail rather
  // than hang their consumers. A clean end-of-stream (every step complete)
  // leaves failed_from_ at n_steps — failed() stays false.
  if (first_incomplete() < layout_.n_steps) {
    fail(comm);
  } else if (des_ != nullptr) {
    wake_all(consumer_waiters_);
  }
}

void Topic::subscribe(Reader* r) { subscribers_.push_back(r); }

void Topic::unsubscribe(Reader* r) {
  std::erase(subscribers_, r);
  // The dropped consumer may have been the retirement straggler (consumer
  // death): re-settle the floor so stalled producers resume against the
  // survivors.
  if (des_ != nullptr) advance_retirement(nullptr);
}

void Topic::await(mpi::Comm& comm, std::uint64_t lo, std::uint64_t hi) {
  des_ = &comm.engine();
  COLCOM_EXPECT(lo >= layout_.base && lo < hi);
  COLCOM_EXPECT(hi <= layout_.base + layout_.n_steps * layout_.step_bytes);
  const std::uint64_t s0 = step_of(lo);
  const std::uint64_t s1 = step_of(hi - 1);
  COLCOM_EXPECT_MSG(s0 >= retired_upto_, "await of a retired step");
  for (std::uint64_t s = s0; s <= s1; ++s) {
    for (;;) {
      auto it = steps_.find(s);
      if (it != steps_.end() && it->second.complete) break;
      if (s >= failed_from_) {
        throw fault::Error(fault::Layer::stream, fault::Kind::producer_failed,
                           "producer died before step " + std::to_string(s) +
                               " of " + name_);
      }
      consumer_waiters_.push_back(des_->current_actor());
      des_->block();
      check_alive(comm);
    }
  }
}

void Topic::verify_contribs(mpi::Comm& comm, std::uint64_t step, Step& s) {
  fault::Injector* fi = comm.runtime().chaos();
  for (Contribution& c : s.contribs) {
    if (c.verified) continue;
    c.verified = true;
    integrity::note_verified(integrity::Stage::stream_payload);
    const std::span<std::byte> have(s.buf.data() + c.offset, c.length);
    if (integrity::checksum(have) == c.sum) {
      c.pristine.clear();
      c.pristine.shrink_to_fit();
      continue;
    }
    // The served buffer rotted after publish: one detection episode,
    // closed by the producer re-request (recovered) or by both copies
    // being bad (failed, structured).
    integrity::note_detected(integrity::Stage::stream_payload);
    const std::uint64_t file_off =
        layout_.base + step * layout_.step_bytes + c.offset;
    const bool producer_bad =
        c.pristine.empty() ||
        (fi != nullptr &&
         fi->schedule().corrupt_extent(
             2, static_cast<std::uint64_t>(layout_.file.index), file_off, 1));
    if (!producer_bad && integrity::checksum(c.pristine) == c.sum) {
      // Re-request: copy the producer's shadow back over the step buffer
      // at handoff bandwidth — bounded, bit-identical recovery.
      std::memcpy(have.data(), c.pristine.data(), c.length);
      comm.overhead(static_cast<double>(c.length) / cfg_->bb_bw);
      integrity::note_recovered(integrity::Stage::stream_payload, c.length);
      c.pristine.clear();
      c.pristine.shrink_to_fit();
      continue;
    }
    throw integrity::make_corrupt_error(
        fault::Layer::stream, integrity::Stage::stream_payload,
        name_ + " step " + std::to_string(step) + " offset " +
            std::to_string(c.offset) + ": producer copy also corrupt");
  }
}

void Topic::copy(mpi::Comm& comm, std::uint64_t off,
                 std::span<std::byte> dst) {
  check::Checker* chk = check::Checker::current();
  std::uint64_t pos = 0;
  while (pos < dst.size()) {
    const std::uint64_t rel = off + pos - layout_.base;
    const std::uint64_t s = rel / layout_.step_bytes;
    const std::uint64_t so = rel % layout_.step_bytes;
    const std::uint64_t n =
        std::min<std::uint64_t>(dst.size() - pos, layout_.step_bytes - so);
    auto it = steps_.find(s);
    COLCOM_EXPECT_MSG(it != steps_.end() && it->second.complete,
                      "copy from an incomplete step (prepare() not awaited?)");
    // Verify-on-first-use: every contribution of the step is checked the
    // first time any consumer copy touches the step, so a corrupt payload
    // never crosses this custody boundary unverified.
    verify_contribs(comm, s, it->second);
    if (chk != nullptr) {
      chk->on_stage_read(comm.rank(), layout_.file.index, off + pos, n,
                         ctx_of(s));
    }
    std::memcpy(dst.data() + pos, it->second.buf.data() + so, n);
    pos += n;
  }
}

void Topic::consumed(mpi::Comm& comm, Reader* r, std::uint64_t hi) {
  des_ = &comm.engine();
  COLCOM_EXPECT(hi > layout_.base);
  r->watermark_ = std::max(r->watermark_, step_of(hi - 1) + 1);
  advance_retirement(&comm);
}

void Topic::advance_retirement(mpi::Comm* comm) {
  std::uint64_t floor = first_incomplete();
  for (const Reader* r : subscribers_) {
    floor = std::min(floor, r->watermark_);
  }
  if (floor <= retired_upto_) return;
  while (retired_upto_ < floor) {
    auto it = steps_.find(retired_upto_);
    if (it != steps_.end()) {
      for (const Contribution& c : it->second.contribs) {
        if (c.area != nullptr) c.area->stream_unpin(c.length);
      }
      steps_.erase(it);
    }
    ++stats_.steps_retired;
    ++retired_upto_;
  }
  if (comm != nullptr) {
    TRACE_COUNT(comm->engine(), trace::Track::stage, "stream.steps_retired",
                1);
    stream_instant(*comm, "stream.retire");
  }
  wake_all(producer_waiters_);
}

// --- Engine ---

Engine::Engine(StreamConfig cfg) : cfg_(cfg) {
  COLCOM_EXPECT(cfg_.window >= 1);
}

Topic& Engine::topic(const std::string& name, const TopicLayout& layout) {
  for (auto& [n, t] : topics_) {
    if (n == name) {
      const TopicLayout& have = t->layout();
      COLCOM_EXPECT_MSG(have.file.index == layout.file.index &&
                            have.base == layout.base &&
                            have.step_bytes == layout.step_bytes &&
                            have.n_steps == layout.n_steps,
                        "topic re-registered with a different layout");
      return *t;
    }
  }
  const int ctx =
      cfg_.check_ctx_base + static_cast<int>(topics_.size()) * kCtxStride;
  topics_.emplace_back(
      name, std::make_unique<Topic>(name, layout, cfg_, ctx));
  return *topics_.back().second;
}

Topic* Engine::find(const std::string& name) {
  for (auto& [n, t] : topics_) {
    if (n == name) return t.get();
  }
  return nullptr;
}

StreamStats Engine::stats() const {
  StreamStats total;
  for (const auto& [n, t] : topics_) {
    const StreamStats& s = t->stats();
    total.steps_published += s.steps_published;
    total.bytes_published += s.bytes_published;
    total.steps_retired += s.steps_retired;
    total.backpressure_stalls += s.backpressure_stalls;
    total.stall_s += s.stall_s;
    total.steps_failed += s.steps_failed;
  }
  return total;
}

std::uint64_t Engine::resident_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [n, t] : topics_) total += t->resident_bytes();
  return total;
}

// --- Producer ---

Producer::Producer(Topic& topic, mpi::Comm& comm, stage::StagingArea* area)
    : topic_(&topic), comm_(&comm), area_(area) {
  topic_->add_producer();
}

Producer::~Producer() {
  if (closed_) return;
  if (!comm_->alive(comm_->rank())) {
    // The whole rank died (the consumer-death scenario: simulation and
    // analysis are colocated). The surviving ranks re-target this rank's
    // rows — the fields a producer publishes are re-derivable, unlike a
    // producer-logic death — so the stream stays healthy: deregister
    // quietly instead of failing pending steps. The rank's StagingArea
    // unwinds with it (it is declared before the producers, so it is
    // destroyed after them): scrub this rank's pins first.
    closed_ = true;
    topic_->release_rank_pins(comm_->rank());
    topic_->producer_closed(*comm_);
    return;
  }
  // Destruction without close() is a producer death (the simulation fiber
  // unwound mid-stream): fail pending steps so consumers error, never hang.
  topic_->fail(*comm_);
}

void Producer::publish(std::uint64_t step, std::uint64_t step_offset,
                       std::span<const std::byte> bytes, bool takeover) {
  // The producer-death crash point. Deliberately NOT mpi::ft::crash_point:
  // that kills the whole rank's process, but here only the simulation side
  // dies — the analysis rank lives on and must see a structured error.
  fault::Injector* fi = comm_->runtime().chaos();
  if (fi != nullptr && fi->schedule().has_crash_points()) {
    ++entries_;
    if (fi->schedule().crash_at(fault::Phase::stream_publish, comm_->rank(),
                                entries_)) {
      closed_ = true;  // the fail below is this producer's terminal act
      topic_->fail(*comm_);
      throw fault::Error(fault::Layer::stream, fault::Kind::producer_failed,
                         comm_->rank(),
                         "producer crash point at step " +
                             std::to_string(step) + " of " + topic_->name());
    }
  }
  topic_->publish(*comm_, step, step_offset, bytes, area_, takeover);
}

void Producer::close() {
  if (closed_) return;
  closed_ = true;
  topic_->producer_closed(*comm_);
}

// --- Reader ---

Reader::Reader(Topic& topic, mpi::Comm& comm, std::uint64_t sieve_gap,
               bool subscribing)
    : topic_(&topic),
      comm_(&comm),
      sieve_gap_(sieve_gap),
      subscribing_(subscribing) {
  if (subscribing_) topic_->subscribe(this);
}

Reader::~Reader() {
  if (subscribing_) topic_->unsubscribe(this);
}

bool Reader::begin(pfs::ByteExtent chunk,
                   const std::vector<romio::FlatRequest>& dreqs,
                   bool /*speculative*/) {
  Fetch f;
  f.chunk = chunk;
  if (chunk.length > 0) {
    f.extents = romio::chunk_read_extents(dreqs, chunk, sieve_gap_);
  }
  inflight_.push_back(std::move(f));
  return true;
}

stage::SourceChunk Reader::take() {
  COLCOM_EXPECT_MSG(!holding_, "take() without release() of the previous chunk");
  COLCOM_EXPECT_MSG(!inflight_.empty(), "take() with no begun fetch");
  Fetch f = std::move(inflight_.front());
  inflight_.pop_front();
  holding_ = true;

  stage::SourceChunk out;
  if (f.chunk.length == 0) return out;

  held_buf_.assign(f.chunk.length, std::byte{0});
  held_extents_ = std::move(f.extents);
  std::uint64_t total = 0;
  for (const pfs::ByteExtent& e : held_extents_) {
    topic_->copy(*comm_, e.offset,
                 std::span<std::byte>(held_buf_.data() +
                                          (e.offset - f.chunk.offset),
                                      e.length));
    total += e.length;
  }
  // Reading the published slab is a burst-buffer copy, like a cache hit.
  comm_->overhead(static_cast<double>(total) / topic_->cfg_->bb_bw);
  out.data = std::span<std::byte>(held_buf_);
  out.extents = std::span<const pfs::ByteExtent>(held_extents_);
  out.hit = true;
  return out;
}

void Reader::release() {
  COLCOM_EXPECT_MSG(holding_, "release() without take()");
  holding_ = false;
  held_buf_.clear();
  held_extents_.clear();
}

std::unique_ptr<stage::ChunkSource> Reader::aux() {
  // Recovery side-channel: reads the same published steps but never joins
  // the retirement quorum, so an absorb can't hold the window open.
  return std::make_unique<Reader>(*topic_, *comm_, sieve_gap_, false);
}

void Reader::prepare(std::uint64_t lo, std::uint64_t hi) {
  topic_->await(*comm_, lo, hi);
}

void Reader::retire(std::uint64_t lo, std::uint64_t hi) {
  if (!subscribing_ || hi <= lo) return;
  topic_->consumed(*comm_, this, hi);
}

}  // namespace colcom::stream

#include "pfs/fault.hpp"

#include "util/assert.hpp"

namespace colcom::pfs {

std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t store_checksum(const Store& store, std::uint64_t offset,
                             std::uint64_t len) {
  // Stream in bounded windows to stay memory-friendly for large ranges.
  constexpr std::uint64_t kWindow = 1ull << 20;
  std::vector<std::byte> buf;
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::uint64_t pos = 0;
  while (pos < len) {
    const std::uint64_t n = std::min(kWindow, len - pos);
    buf.resize(n);
    store.read(offset + pos, buf);
    for (const std::byte b : buf) {
      h ^= static_cast<std::uint64_t>(b);
      h *= 0x100000001b3ull;
    }
    pos += n;
  }
  return h;
}

FaultyStore::FaultyStore(std::unique_ptr<Store> base, double corrupt_prob,
                         std::uint64_t seed, int corrupt_attempts,
                         double write_corrupt_prob)
    : base_(std::move(base)),
      corrupt_prob_(corrupt_prob),
      seed_(seed),
      corrupt_attempts_(corrupt_attempts),
      write_corrupt_prob_(write_corrupt_prob) {
  COLCOM_EXPECT(base_ != nullptr);
  COLCOM_EXPECT(corrupt_prob >= 0.0 && corrupt_prob <= 1.0);
  COLCOM_EXPECT(write_corrupt_prob >= 0.0 && write_corrupt_prob <= 1.0);
  COLCOM_EXPECT(corrupt_attempts >= 1);
}

namespace {
// Fixed-size exhausted filter: 2^16 bits (8 KiB) with two probe positions.
constexpr std::size_t kExhaustedBits = 1ull << 16;

std::pair<std::size_t, std::size_t> exhausted_probes(std::uint64_t seed,
                                                     std::uint64_t offset) {
  SplitMix64 sm(seed ^ (offset * 0xbf58476d1ce4e5b9ull + 3));
  const std::size_t a = static_cast<std::size_t>(sm.next()) % kExhaustedBits;
  const std::size_t b = static_cast<std::size_t>(sm.next()) % kExhaustedBits;
  return {a, b};
}
}  // namespace

bool FaultyStore::exhausted_contains(std::uint64_t offset) const {
  if (exhausted_bits_.empty()) return false;
  const auto [a, b] = exhausted_probes(seed_, offset);
  return (exhausted_bits_[a / 64] >> (a % 64) & 1) != 0 &&
         (exhausted_bits_[b / 64] >> (b % 64) & 1) != 0;
}

void FaultyStore::exhausted_insert(std::uint64_t offset) const {
  if (exhausted_bits_.empty()) exhausted_bits_.resize(kExhaustedBits / 64, 0);
  const auto [a, b] = exhausted_probes(seed_, offset);
  exhausted_bits_[a / 64] |= 1ull << (a % 64);
  exhausted_bits_[b / 64] |= 1ull << (b % 64);
}

bool FaultyStore::should_corrupt(std::uint64_t key, double prob) const {
  if (prob <= 0.0) return false;
  // Hash the key with the seed into a uniform [0,1) decision so the
  // fault pattern is a pure function of location (reproducible), then cap
  // by attempt count so retries succeed.
  SplitMix64 sm(seed_ ^ (key * 0x9e3779b97f4a7c15ull + 1));
  const double roll =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  if (roll >= prob) return false;
  // Past its budget the key reads clean forever; its counter is gone.
  if (exhausted_contains(key)) return false;
  auto [it, inserted] = attempts_.try_emplace(key, 0);
  if (inserted) {
    attempt_order_.push_back(key);
    // Drop deque entries whose counters already left the map (exhausted),
    // then enforce the live-counter bound FIFO.
    while (attempts_.size() > kMaxTrackedOffsets && !attempt_order_.empty()) {
      const std::uint64_t victim = attempt_order_.front();
      attempt_order_.pop_front();
      if (victim != key) attempts_.erase(victim);
    }
  }
  const int attempt = ++it->second;
  if (attempt >= corrupt_attempts_) {
    // Budget spent with this read: remember it compactly and free the
    // counter (the deque entry is dropped lazily on a later eviction scan).
    exhausted_insert(key);
    attempts_.erase(it);
  }
  return attempt <= corrupt_attempts_;
}

namespace {
// Keeps the write-path fault space disjoint from the read-path one while
// sharing the attempt-budget machinery (keys never collide in practice:
// the salt is a large odd constant far from any real offset delta).
constexpr std::uint64_t kWriteKeySalt = 0x517cc1b727220a95ull;
}  // namespace

void FaultyStore::read(std::uint64_t offset, std::span<std::byte> dst) const {
  base_->read(offset, dst);
  if (dst.empty() || !should_corrupt(offset, corrupt_prob_)) return;
  ++corruptions_;
  // Flip a deterministic byte pattern across the payload.
  SplitMix64 sm(seed_ ^ offset);
  for (std::size_t i = 0; i < dst.size(); i += 257) {
    dst[i] ^= std::byte{static_cast<std::uint8_t>(sm.next() | 1)};
  }
}

void FaultyStore::write(std::uint64_t offset, std::span<const std::byte> src) {
  if (src.empty() ||
      !should_corrupt(offset ^ kWriteKeySalt, write_corrupt_prob_)) {
    base_->write(offset, src);
    return;
  }
  ++write_corruptions_;
  // The damage is persistent: the corrupted bytes land in the base store,
  // so every later read sees them until the offset is rewritten.
  std::vector<std::byte> torn(src.begin(), src.end());
  SplitMix64 sm(seed_ ^ (offset * 0x94d049bb133111ebull + 5));
  for (std::size_t i = 0; i < torn.size(); i += 257) {
    torn[i] ^= std::byte{static_cast<std::uint8_t>(sm.next() | 1)};
  }
  base_->write(offset, torn);
}

}  // namespace colcom::pfs

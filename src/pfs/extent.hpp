// Byte extents — the lingua franca between the high-level I/O layer, the
// two-phase engine, and the file system.
#pragma once

#include <cstdint>
#include <vector>

namespace colcom::pfs {

/// A contiguous byte range [offset, offset + length) in a file.
struct ByteExtent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  std::uint64_t end() const { return offset + length; }
  friend bool operator==(const ByteExtent&, const ByteExtent&) = default;
};

/// Sums the lengths of all extents.
inline std::uint64_t total_bytes(const std::vector<ByteExtent>& extents) {
  std::uint64_t n = 0;
  for (const auto& e : extents) n += e.length;
  return n;
}

/// Merges adjacent/overlapping extents in a *sorted* extent list, in place.
void coalesce_sorted(std::vector<ByteExtent>& extents);

}  // namespace colcom::pfs

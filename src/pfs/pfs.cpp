#include "pfs/pfs.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/prng.hpp"

namespace colcom::pfs {

void coalesce_sorted(std::vector<ByteExtent>& extents) {
  if (extents.empty()) return;
  std::size_t out = 0;
  for (std::size_t i = 1; i < extents.size(); ++i) {
    COLCOM_EXPECT_MSG(extents[i].offset >= extents[out].offset,
                      "coalesce_sorted requires sorted input");
    if (extents[i].offset <= extents[out].end()) {
      extents[out].length =
          std::max(extents[out].end(), extents[i].end()) - extents[out].offset;
    } else {
      extents[++out] = extents[i];
    }
  }
  extents.resize(out + 1);
}

Pfs::Pfs(des::Engine& engine, PfsConfig cfg)
    : engine_(&engine), cfg_(cfg), storage_net_(engine, "storage-net") {
  COLCOM_EXPECT(cfg.n_osts >= 1);
  COLCOM_EXPECT(cfg.stripe_size >= 1);
  COLCOM_EXPECT(cfg.ost_bw > 0 && cfg.storage_net_bw > 0);
  osts_.resize(static_cast<std::size_t>(cfg.n_osts));
  for (int i = 0; i < cfg.n_osts; ++i) {
    osts_[static_cast<std::size_t>(i)].server =
        std::make_unique<des::FifoResource>(engine,
                                            "ost" + std::to_string(i));
  }
}

FileId Pfs::create(std::string name, std::unique_ptr<Store> store) {
  COLCOM_EXPECT(store != nullptr);
  for (const auto& f : files_) {
    COLCOM_EXPECT_MSG(f.name != name, "duplicate file name");
  }
  files_.push_back(File{std::move(name), std::move(store)});
  return FileId{static_cast<int>(files_.size()) - 1};
}

FileId Pfs::open(const std::string& name) const {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) return FileId{static_cast<int>(i)};
  }
  COLCOM_EXPECT_MSG(false, "no such file: " + name);
  return FileId{};
}

Store& Pfs::store(FileId id) {
  COLCOM_EXPECT(id.valid() && id.index < static_cast<int>(files_.size()));
  return *files_[static_cast<std::size_t>(id.index)].store;
}

const Store& Pfs::store(FileId id) const {
  COLCOM_EXPECT(id.valid() && id.index < static_cast<int>(files_.size()));
  return *files_[static_cast<std::size_t>(id.index)].store;
}

void Pfs::wrap_store(FileId id,
                     const std::function<std::unique_ptr<Store>(
                         std::unique_ptr<Store>)>& wrap) {
  COLCOM_EXPECT(id.valid() && id.index < static_cast<int>(files_.size()));
  auto& slot = files_[static_cast<std::size_t>(id.index)].store;
  slot = wrap(std::move(slot));
  COLCOM_EXPECT(slot != nullptr);
}

double Pfs::peak_bandwidth() const {
  return std::min(static_cast<double>(cfg_.n_osts) * cfg_.ost_bw,
                  cfg_.storage_net_bw);
}

des::SimTime Pfs::charge(std::uint64_t offset, std::uint64_t len,
                         const char* op) {
  trace::Tracer* tr = trace::Tracer::current();
  if (tr != nullptr) {
    // Track ids inside Track::pfs: one per OST, then the storage network.
    tr->count(trace::Track::pfs,
              op[0] == 'r' ? "pfs.ost_read_bytes" : "pfs.ost_write_bytes",
              len, engine_->now());
    tr->metrics()
        .histogram("pfs.request_bytes",
                   {4096, 65536, 1 << 20, 4 << 20, 16 << 20, 64 << 20})
        .observe(static_cast<double>(len));
  }
  // Decompose [offset, offset+len) into per-OST byte counts. Within one
  // request an OST serves its stripes as one sequential pass.
  des::SimTime done = engine_->now();
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + len;
  // Per-OST accumulation for this request.
  std::vector<std::uint64_t> ost_bytes(osts_.size(), 0);
  std::vector<std::uint64_t> ost_first(osts_.size(), ~0ull);
  std::vector<std::uint64_t> ost_last(osts_.size(), 0);
  while (pos < end) {
    const std::uint64_t stripe = pos / cfg_.stripe_size;
    const auto ost = static_cast<std::size_t>(
        stripe % static_cast<std::uint64_t>(cfg_.n_osts));
    const std::uint64_t stripe_end = (stripe + 1) * cfg_.stripe_size;
    const std::uint64_t n = std::min(end, stripe_end) - pos;
    if (ost_bytes[ost] == 0) ost_first[ost] = pos;
    ost_bytes[ost] += n;
    ost_last[ost] = pos + n;
    pos += n;
  }
  for (std::size_t o = 0; o < osts_.size(); ++o) {
    if (ost_bytes[o] == 0) continue;
    Ost& ost = osts_[o];
    const bool sequential = (ost.last_end == ost_first[o]);
    if (!sequential) {
      ++stats_.seeks;
      if (tr != nullptr) tr->metrics().counter("pfs.seeks").add(1);
    }
    des::SimTime service = cfg_.ost_request_overhead +
                           (sequential ? 0.0 : cfg_.ost_seek) +
                           static_cast<double>(ost_bytes[o]) / cfg_.ost_bw;
    // Transient faults: deterministic per (request, OST) roll; each retry
    // pays the detection timeout plus a fresh service pass.
    int retries = 0;
    if (cfg_.transient_fail_prob > 0) {
      SplitMix64 sm(cfg_.fault_seed ^
                    (stats_.requests * 1099511628211ull + o * 40503ull));
      const des::SimTime single_pass = service;
      int tries = 0;
      while (static_cast<double>(sm.next() >> 11) * 0x1.0p-53 <
             cfg_.transient_fail_prob) {
        if (++tries > cfg_.max_retries) {
          // Structured failure, not an abort: the caller decides whether to
          // degrade (independent re-read) or surface the error.
          ++stats_.retry_exhausted;
          ++stats_.requests;
          if (tr != nullptr) {
            tr->metrics().counter("fault.pfs.retry_exhausted").add(1);
            tr->instant(trace::Track::pfs, static_cast<int>(o), "pfs",
                        "fault.retry_exhausted", engine_->now());
          }
          throw fault::Error(
              fault::Layer::pfs, fault::Kind::retry_exhausted,
              "ost" + std::to_string(o) + " " + op + " at offset " +
                  std::to_string(offset) + " failed after " +
                  std::to_string(cfg_.max_retries) + " retries");
        }
        ++stats_.retries;
        ++retries;
        service += cfg_.retry_delay_s + single_pass;
      }
    }
    const des::SimTime busy_from =
        std::max(engine_->now(), ost.server->next_free());
    const des::SimTime done_o = ost.server->enqueue(service);
    done = std::max(done, done_o);
    if (tr != nullptr) {
      const int tid = static_cast<int>(o);
      tr->name_track(trace::Track::pfs, tid, "ost" + std::to_string(o));
      tr->complete(trace::Track::pfs, tid, "pfs",
                   std::string(op) + " " + format_bytes(ost_bytes[o]),
                   busy_from, done_o);
      if (retries > 0) {
        tr->metrics().counter("pfs.retries").add(
            static_cast<std::uint64_t>(retries));
        for (int i = 0; i < retries; ++i) {
          tr->instant(trace::Track::pfs, tid, "pfs", "fault.retry",
                      engine_->now());
        }
      }
    }
    ost.last_end = ost_last[o];
    ++stats_.ost_requests;
  }
  // The payload also crosses the shared storage network.
  {
    const des::SimTime busy_from =
        std::max(engine_->now(), storage_net_.next_free());
    const des::SimTime done_n = storage_net_.enqueue(
        static_cast<double>(len) / cfg_.storage_net_bw);
    done = std::max(done, done_n);
    if (tr != nullptr) {
      const int tid = cfg_.n_osts;
      tr->name_track(trace::Track::pfs, tid, "storage-net");
      tr->complete(trace::Track::pfs, tid, "pfs",
                   std::string(op) + " " + format_bytes(len), busy_from,
                   done_n);
    }
  }
  ++stats_.requests;
  return done;
}

des::Completion Pfs::read_async(FileId id, std::uint64_t offset,
                                std::span<std::byte> dst) {
  Store& s = store(id);
  s.read(offset, dst);
  stats_.read_bytes += dst.size();
  if (dst.empty()) return des::Completion::ready(*engine_);
  return des::Completion::at(*engine_, charge(offset, dst.size(), "read"));
}

des::Completion Pfs::read_extents_async(FileId id,
                                        const std::vector<ByteExtent>& extents,
                                        std::span<std::byte> dst) {
  Store& s = store(id);
  des::SimTime done = engine_->now();
  std::uint64_t pos = 0;
  for (const auto& e : extents) {
    COLCOM_EXPECT(pos + e.length <= dst.size());
    s.read(e.offset, dst.subspan(pos, e.length));
    pos += e.length;
    stats_.read_bytes += e.length;
    if (e.length > 0) done = std::max(done, charge(e.offset, e.length, "read"));
  }
  COLCOM_EXPECT_MSG(pos == dst.size(), "dst must match total extent bytes");
  return des::Completion::at(*engine_, done);
}

des::Completion Pfs::write_async(FileId id, std::uint64_t offset,
                                 std::span<const std::byte> src) {
  Store& s = store(id);
  s.write(offset, src);
  stats_.written_bytes += src.size();
  if (src.empty()) return des::Completion::ready(*engine_);
  return des::Completion::at(*engine_, charge(offset, src.size(), "write"));
}

}  // namespace colcom::pfs

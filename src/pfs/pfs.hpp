// Lustre-like striped parallel file system in virtual time.
//
// Files are striped round-robin across OSTs (object storage targets). Each
// OST is a FIFO server with per-request overhead, a seek penalty for
// non-sequential access, and a streaming bandwidth; a shared storage-network
// pipe caps aggregate throughput (Hopper: 35 GB/s peak over 156 OSTs; the
// paper's experiments use 40). Real bytes move between the Store and caller
// buffers; the time cost is modeled.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "des/completion.hpp"
#include "des/engine.hpp"
#include "des/resource.hpp"
#include "pfs/extent.hpp"
#include "pfs/store.hpp"

namespace colcom::pfs {

struct PfsConfig {
  int n_osts = 40;
  std::uint64_t stripe_size = 4ull << 20;  ///< 4 MB, the paper's setting
  double ost_bw = 400e6;          ///< bytes/s streamed per OST
  double ost_seek = 3e-3;         ///< seconds, non-sequential reposition
  double ost_request_overhead = 0.25e-3;  ///< seconds, fixed per request
  double storage_net_bw = 16e9;   ///< shared client<->server pipe, bytes/s

  /// Transient OST faults: this fraction of OST requests times out and is
  /// retried after retry_delay_s (deterministic, seeded). 0 disables.
  /// A request still failing after max_retries retries throws fault::Error
  /// (Layer::pfs, Kind::retry_exhausted) so callers can degrade — e.g.
  /// romio::ChunkReader re-reads the extent independently.
  double transient_fail_prob = 0;
  double retry_delay_s = 0.25;
  int max_retries = 4;
  std::uint64_t fault_seed = 0x5eed;
};

/// Opaque file id.
struct FileId {
  int index = -1;
  bool valid() const { return index >= 0; }
};

/// Counters for reports and tests.
struct PfsStats {
  std::uint64_t read_bytes = 0;
  std::uint64_t written_bytes = 0;
  std::uint64_t requests = 0;
  std::uint64_t ost_requests = 0;
  std::uint64_t seeks = 0;
  std::uint64_t retries = 0;  ///< transient-fault retries served
  std::uint64_t retry_exhausted = 0;  ///< requests failed past max_retries
};

class Pfs {
 public:
  Pfs(des::Engine& engine, PfsConfig cfg);

  /// Registers a file; name must be unique.
  FileId create(std::string name, std::unique_ptr<Store> store);

  /// Looks up by name; contract violation if absent.
  FileId open(const std::string& name) const;

  Store& store(FileId id);
  const Store& store(FileId id) const;

  /// Replaces a file's store with wrap(old_store) — used to layer fault
  /// injection under an already-built dataset.
  void wrap_store(FileId id,
                  const std::function<std::unique_ptr<Store>(
                      std::unique_ptr<Store>)>& wrap);
  std::uint64_t file_size(FileId id) const { return store(id).size(); }

  /// Reads one contiguous range: bytes land in `dst` immediately; the
  /// returned completion fires when the simulated transfer finishes.
  des::Completion read_async(FileId id, std::uint64_t offset,
                             std::span<std::byte> dst);
  void read(FileId id, std::uint64_t offset, std::span<std::byte> dst) {
    read_async(id, offset, dst).wait();
  }

  /// Reads a non-contiguous extent list into `dst` (packed in list order) —
  /// the access pattern of *independent* I/O. Every extent pays per-request
  /// OST costs, which is exactly why collective I/O exists.
  des::Completion read_extents_async(FileId id,
                                     const std::vector<ByteExtent>& extents,
                                     std::span<std::byte> dst);

  des::Completion write_async(FileId id, std::uint64_t offset,
                              std::span<const std::byte> src);
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> src) {
    write_async(id, offset, src).wait();
  }

  const PfsConfig& config() const { return cfg_; }
  const PfsStats& stats() const { return stats_; }

  /// Aggregate streaming bandwidth (n_osts * ost_bw, capped by the storage
  /// network) — used by benches to reason about expected I/O times.
  double peak_bandwidth() const;

 private:
  struct Ost {
    std::unique_ptr<des::FifoResource> server;
    std::uint64_t last_end = ~0ull;  ///< last byte served + 1, for seek model
  };
  struct File {
    std::string name;
    std::unique_ptr<Store> store;
  };

  /// Charges OST + network time for accessing [offset, offset+len); returns
  /// the finish time. Shared by read/write (symmetric cost model); `op` is
  /// "read" or "write" and only labels trace output.
  des::SimTime charge(std::uint64_t offset, std::uint64_t len, const char* op);

  des::Engine* engine_;
  PfsConfig cfg_;
  std::vector<Ost> osts_;
  des::FifoResource storage_net_;
  std::vector<File> files_;
  PfsStats stats_;
};

}  // namespace colcom::pfs

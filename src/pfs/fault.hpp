// Fault injection for the storage stack — the substrate behind the
// fault-tolerance investigation the paper lists as future work (Sec. VI).
//
// Two deterministic fault classes:
//  * transient OST faults: an injected fraction of OST requests time out and
//    are retried after a delay (costed in virtual time, data unharmed);
//  * silent corruption: a FaultyStore flips bytes of selected reads while
//    checksum() still reflects the pristine data, so end-to-end verification
//    (as in Lustre T10-PI) can detect the damage and trigger a re-read.
// All randomness is seeded; runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "pfs/store.hpp"
#include "util/prng.hpp"

namespace colcom::pfs {

/// Transient-fault model applied per OST request.
struct FaultModel {
  double transient_fail_prob = 0;  ///< chance an OST request must retry
  double retry_delay_s = 0.25;     ///< detection timeout before the retry
  int max_retries = 4;             ///< give up (contract error) after this
  std::uint64_t seed = 0x5eed;
};

/// 64-bit FNV-1a over a byte range — the end-to-end checksum primitive.
std::uint64_t fnv1a(std::span<const std::byte> bytes);

/// Checksum of a store's *pristine* content over [offset, offset+len).
std::uint64_t store_checksum(const Store& store, std::uint64_t offset,
                             std::uint64_t len);

/// Wraps a store; an injected fraction of reads returns corrupted bytes
/// (deterministic in offset and attempt count). Each location corrupts at
/// most `corrupt_attempts` times, so retries eventually see good data —
/// modelling transient in-flight corruption. With `write_corrupt_prob > 0`
/// a fraction of writes lands corrupted *in the store itself* (a torn
/// write), so verify-on-read paths above (checkpoint trailers, write-behind
/// re-reads) see persistent damage they must recover around; a rewrite of
/// the same offset is a fresh attempt and eventually lands clean.
class FaultyStore final : public Store {
 public:
  FaultyStore(std::unique_ptr<Store> base, double corrupt_prob,
              std::uint64_t seed = 0xbadc0de, int corrupt_attempts = 1,
              double write_corrupt_prob = 0);

  void read(std::uint64_t offset, std::span<std::byte> dst) const override;
  void write(std::uint64_t offset, std::span<const std::byte> src) override;
  std::uint64_t size() const override { return base_->size(); }

  /// Pristine content (for checksums / verification).
  const Store& pristine() const override { return *base_; }

  std::uint64_t corruptions_served() const { return corruptions_; }
  std::uint64_t write_corruptions() const { return write_corruptions_; }

  /// Offsets currently holding a live attempt counter (bounded by
  /// kMaxTrackedOffsets) — exposed so tests can assert the memory bound.
  std::size_t tracked_offsets() const { return attempts_.size(); }

  /// Memory bound on live attempt counters. Offsets that exhausted their
  /// corruption budget leave the map for a fixed-size filter; under pressure
  /// the oldest live counter is evicted (that offset would restart its
  /// budget if read again — a deterministic, conservative approximation).
  static constexpr std::size_t kMaxTrackedOffsets = 4096;

 private:
  /// Deterministic per-(key,attempt) decision; reads key by offset, writes
  /// by offset mixed with a salt so the two fault spaces roll independently.
  bool should_corrupt(std::uint64_t key, double prob) const;

  bool exhausted_contains(std::uint64_t offset) const;
  void exhausted_insert(std::uint64_t offset) const;

  std::unique_ptr<Store> base_;
  double corrupt_prob_;
  std::uint64_t seed_;
  int corrupt_attempts_;
  double write_corrupt_prob_;
  // Bounded attempt tracking; mutable: read() is logically const. Live
  // counters are FIFO-evicted at kMaxTrackedOffsets; exhausted offsets move
  // to a fixed-size two-probe bit filter (a false positive only makes a
  // corruptible offset read clean — benign and still deterministic).
  mutable std::unordered_map<std::uint64_t, int> attempts_;
  mutable std::deque<std::uint64_t> attempt_order_;
  mutable std::vector<std::uint64_t> exhausted_bits_;
  mutable std::uint64_t corruptions_ = 0;
  std::uint64_t write_corruptions_ = 0;
};

}  // namespace colcom::pfs

#include "pfs/store.hpp"

#include <algorithm>

namespace colcom::pfs {

void OverlayStore::read(std::uint64_t offset,
                        std::span<std::byte> dst) const {
  COLCOM_EXPECT(offset + dst.size() <= size());
  // Start from base content (zero-fill past its end), then patch overlays.
  const std::uint64_t base_size = base_->size();
  if (offset < base_size) {
    const std::uint64_t n = std::min<std::uint64_t>(dst.size(),
                                                    base_size - offset);
    base_->read(offset, dst.subspan(0, n));
    if (n < dst.size()) {
      std::fill(dst.begin() + static_cast<std::ptrdiff_t>(n), dst.end(),
                std::byte{0});
    }
  } else {
    std::fill(dst.begin(), dst.end(), std::byte{0});
  }

  const std::uint64_t lo = offset;
  const std::uint64_t hi = offset + dst.size();
  auto it = overlay_.upper_bound(lo);
  if (it != overlay_.begin()) --it;
  for (; it != overlay_.end() && it->first < hi; ++it) {
    const std::uint64_t ext_lo = it->first;
    const std::uint64_t ext_hi = ext_lo + it->second.size();
    const std::uint64_t cl = std::max(lo, ext_lo);
    const std::uint64_t ch = std::min(hi, ext_hi);
    if (cl >= ch) continue;
    std::memcpy(dst.data() + (cl - lo), it->second.data() + (cl - ext_lo),
                ch - cl);
  }
}

void OverlayStore::write(std::uint64_t offset,
                         std::span<const std::byte> src) {
  if (src.empty()) return;
  const std::uint64_t lo = offset;
  const std::uint64_t hi = offset + src.size();
  end_ = std::max(end_, hi);

  // Merge with any extents overlapping or touching [lo, hi).
  std::uint64_t new_lo = lo;
  std::uint64_t new_hi = hi;
  auto first = overlay_.upper_bound(lo);
  if (first != overlay_.begin()) {
    auto prev = std::prev(first);
    if (prev->first + prev->second.size() >= lo) first = prev;
  }
  auto last = first;
  while (last != overlay_.end() && last->first <= hi) {
    new_lo = std::min(new_lo, last->first);
    new_hi = std::max(new_hi, last->first + last->second.size());
    ++last;
  }
  std::vector<std::byte> merged(new_hi - new_lo);
  // Old content first (so the new write wins where they overlap)...
  for (auto it = first; it != last; ++it) {
    std::memcpy(merged.data() + (it->first - new_lo), it->second.data(),
                it->second.size());
  }
  // ...then the incoming bytes.
  std::memcpy(merged.data() + (lo - new_lo), src.data(), src.size());
  overlay_.erase(first, last);
  overlay_.emplace(new_lo, std::move(merged));
}

}  // namespace colcom::pfs

// Byte stores backing simulated files.
//
// MemStore holds real bytes. GeneratorStore synthesizes bytes on demand from
// a closed-form element function, so an "800 GB" logical dataset costs no
// memory and every byte has independently computable ground truth — the key
// to verifying collective reads and reductions exactly. OverlayStore layers
// written extents over a generator (used for dataset headers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace colcom::pfs {

/// Abstract random-access byte store.
class Store {
 public:
  virtual ~Store() = default;

  /// Copies `dst.size()` bytes starting at `offset` into `dst`.
  /// Requires offset + dst.size() <= size().
  virtual void read(std::uint64_t offset, std::span<std::byte> dst) const = 0;

  /// Writes `src` at `offset`. Stores that cannot accept writes throw.
  virtual void write(std::uint64_t offset, std::span<const std::byte> src) = 0;

  /// Logical size in bytes.
  virtual std::uint64_t size() const = 0;

  /// The trustworthy view of this store's content, used for end-to-end
  /// checksums. Fault-injecting wrappers return the wrapped store; honest
  /// stores return themselves.
  virtual const Store& pristine() const { return *this; }
};

/// Bytes held in memory; grows on write.
class MemStore final : public Store {
 public:
  MemStore() = default;
  explicit MemStore(std::uint64_t size) : data_(size) {}

  void read(std::uint64_t offset, std::span<std::byte> dst) const override {
    COLCOM_EXPECT(offset + dst.size() <= data_.size());
    std::memcpy(dst.data(), data_.data() + offset, dst.size());
  }

  void write(std::uint64_t offset, std::span<const std::byte> src) override {
    if (offset + src.size() > data_.size()) data_.resize(offset + src.size());
    std::memcpy(data_.data() + offset, src.data(), src.size());
  }

  std::uint64_t size() const override { return data_.size(); }

 private:
  std::vector<std::byte> data_;
};

/// Fills reads from `fill(byte_offset, dst)`; read-only.
class GeneratorStore final : public Store {
 public:
  using FillFn = std::function<void(std::uint64_t offset, std::span<std::byte>)>;

  GeneratorStore(std::uint64_t size, FillFn fill)
      : size_(size), fill_(std::move(fill)) {
    COLCOM_EXPECT(fill_ != nullptr);
  }

  void read(std::uint64_t offset, std::span<std::byte> dst) const override {
    COLCOM_EXPECT(offset + dst.size() <= size_);
    fill_(offset, dst);
  }

  void write(std::uint64_t, std::span<const std::byte>) override {
    COLCOM_EXPECT_MSG(false, "GeneratorStore is read-only");
  }

  std::uint64_t size() const override { return size_; }

 private:
  std::uint64_t size_;
  FillFn fill_;
};

/// A GeneratorStore over typed elements: element i has value fn(i).
/// Elements must be trivially copyable.
template <typename T>
std::unique_ptr<GeneratorStore> make_element_generator(
    std::uint64_t element_count, std::function<T(std::uint64_t)> fn) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint64_t bytes = element_count * sizeof(T);
  auto fill = [fn = std::move(fn)](std::uint64_t offset,
                                   std::span<std::byte> dst) {
    // Reads may start/stop mid-element; synthesize whole elements and copy
    // the overlapping slice.
    std::uint64_t pos = 0;
    while (pos < dst.size()) {
      const std::uint64_t abs = offset + pos;
      const std::uint64_t idx = abs / sizeof(T);
      const std::uint64_t within = abs % sizeof(T);
      const T value = fn(idx);
      const auto* vb = reinterpret_cast<const std::byte*>(&value);
      const std::uint64_t n =
          std::min<std::uint64_t>(sizeof(T) - within, dst.size() - pos);
      std::memcpy(dst.data() + pos, vb + within, n);
      pos += n;
    }
  };
  return std::make_unique<GeneratorStore>(bytes, std::move(fill));
}

/// Written extents shadow a read-only base store — gives generator-backed
/// files a writable header region.
class OverlayStore final : public Store {
 public:
  explicit OverlayStore(std::unique_ptr<Store> base) : base_(std::move(base)) {
    COLCOM_EXPECT(base_ != nullptr);
  }

  void read(std::uint64_t offset, std::span<std::byte> dst) const override;
  void write(std::uint64_t offset, std::span<const std::byte> src) override;
  std::uint64_t size() const override { return std::max(base_->size(), end_); }

 private:
  std::unique_ptr<Store> base_;
  // start offset -> bytes; extents are kept non-overlapping and non-adjacent.
  std::map<std::uint64_t, std::vector<std::byte>> overlay_;
  std::uint64_t end_ = 0;
};

}  // namespace colcom::pfs
